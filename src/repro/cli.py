"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main workflows:

* ``curve``     — render a space-filling curve's visit order;
* ``partition`` — partition the cubed-sphere, print quality metrics,
  optionally write the assignment and the METIS-format graph;
* ``sweep``     — the paper's Figure 7-10 sweeps as a series table;
* ``table2``    — the paper's Table 2 for any (Ne, Nproc).

All output is plain text on stdout (machine-readable CSV via
``--csv`` for ``partition`` and ``sweep``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Space-filling-curve partitioning on the cubed-sphere "
            "(reproduction of Dennis, IPPS 2003)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_curve = sub.add_parser("curve", help="render a space-filling curve")
    group = p_curve.add_mutually_exclusive_group(required=True)
    group.add_argument("--size", type=int, help="domain side (2^n * 3^m)")
    group.add_argument(
        "--schedule", type=str, help="refinement schedule over {H,P}, coarsest first"
    )
    p_curve.add_argument(
        "--analyze", action="store_true", help="print locality statistics"
    )

    p_part = sub.add_parser("partition", help="partition the cubed-sphere")
    p_part.add_argument("--ne", type=int, required=True, help="elements per face edge")
    p_part.add_argument("--nparts", type=int, required=True, help="processor count")
    p_part.add_argument(
        "--method",
        default="sfc",
        choices=["sfc", "rb", "kway", "tv", "rcb", "block", "random"],
    )
    p_part.add_argument("--seed", type=int, default=0)
    p_part.add_argument("--csv", action="store_true", help="CSV metric output")
    p_part.add_argument(
        "--write-assignment", type=Path, help="write gid->part as CSV"
    )
    p_part.add_argument(
        "--write-graph", type=Path, help="write the element graph (METIS format)"
    )

    p_sweep = sub.add_parser("sweep", help="speedup/Gflops sweep (Figs. 7-10)")
    p_sweep.add_argument("--ne", type=int, required=True)
    p_sweep.add_argument(
        "--methods", nargs="+", default=["sfc", "rb", "kway", "tv"]
    )
    p_sweep.add_argument("--nprocs", nargs="*", type=int, default=None)
    p_sweep.add_argument("--csv", action="store_true")

    p_t2 = sub.add_parser("table2", help="partition statistics (Table 2)")
    p_t2.add_argument("--ne", type=int, default=16)
    p_t2.add_argument("--nparts", type=int, default=768)
    p_t2.add_argument("--nlev", type=int, default=1, help="cost-model levels")

    p_trace = sub.add_parser(
        "trace", help="per-rank compute/comm timeline of one step"
    )
    p_trace.add_argument("--ne", type=int, required=True)
    p_trace.add_argument("--nparts", type=int, required=True)
    p_trace.add_argument(
        "--method",
        default="sfc",
        choices=["sfc", "rb", "kway", "tv", "rcb", "block", "random"],
    )
    p_trace.add_argument("--width", type=int, default=60)
    p_trace.add_argument("--max-ranks", type=int, default=24)

    p_report = sub.add_parser(
        "report", help="structural report of a partition (fragmentation etc.)"
    )
    p_report.add_argument("--ne", type=int, required=True)
    p_report.add_argument("--nparts", type=int, required=True)
    p_report.add_argument(
        "--method",
        default="sfc",
        choices=["sfc", "rb", "kway", "tv", "rcb", "block", "random"],
    )
    return parser


def _cmd_curve(args: argparse.Namespace) -> int:
    from .sfc import analyze_curve, generate_curve

    curve = generate_curve(size=args.size, schedule=args.schedule)
    print(f"schedule={curve.schedule or '(trivial)'} size={curve.size}")
    print(curve.render())
    if args.analyze:
        loc = analyze_curve(curve)
        print(
            f"\nlocality: bbox_aspect={loc.mean_bbox_aspect:.3f} "
            f"surface/volume={loc.mean_surface_to_volume:.3f} "
            f"mean_stretch={loc.mean_neighbor_stretch:.2f} "
            f"max_stretch={loc.max_neighbor_stretch}"
        )
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from .cubesphere import cubed_sphere_mesh
    from .experiments import make_partition
    from .graphs import mesh_graph, write_metis_graph
    from .partition import evaluate_partition

    mesh = cubed_sphere_mesh(args.ne)
    graph = mesh_graph(mesh)
    part = make_partition(args.ne, args.nparts, args.method, seed=args.seed)
    q = evaluate_partition(graph, part)
    if args.csv:
        print("method,nparts,lb_nelemd,lb_spcv,edgecut,tcv_points")
        print(
            f"{args.method},{args.nparts},{q.lb_nelemd:.6f},"
            f"{q.lb_spcv:.6f},{q.edgecut},{q.total_volume_points}"
        )
    else:
        print(f"K={mesh.nelem} method={args.method} nparts={args.nparts}")
        print(f"LB(nelemd)   = {q.lb_nelemd:.4f}")
        print(f"LB(spcv)     = {q.lb_spcv:.4f}")
        print(f"edgecut      = {q.edgecut}")
        print(f"TCV (points) = {q.total_volume_points}")
    if args.write_assignment:
        lines = ["gid,part"] + [
            f"{gid},{int(p)}" for gid, p in enumerate(part.assignment)
        ]
        args.write_assignment.write_text("\n".join(lines) + "\n")
        print(f"wrote {args.write_assignment}", file=sys.stderr)
    if args.write_graph:
        write_metis_graph(graph, args.write_graph)
        print(f"wrote {args.write_graph}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import format_series, speedup_sweep

    results = speedup_sweep(
        args.ne, methods=tuple(args.methods), nprocs=args.nprocs or None
    )
    nprocs = [r.nproc for r in results[args.methods[0]]]
    if args.csv:
        header = ["nproc"]
        for m in args.methods:
            header += [f"speedup_{m}", f"gflops_{m}"]
        print(",".join(header))
        for i, n in enumerate(nprocs):
            row = [str(n)]
            for m in args.methods:
                r = results[m][i]
                row += [f"{r.speedup:.3f}", f"{r.gflops:.3f}"]
            print(",".join(row))
    else:
        series: dict[str, list[str]] = {}
        for m in args.methods:
            series[f"S({m})"] = [f"{r.speedup:.1f}" for r in results[m]]
        print(format_series("Nproc", nprocs, series, title=f"Speedup, Ne={args.ne}"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments import render_table2, table2
    from .seam import SEAMCostModel

    cost = SEAMCostModel(nlev=args.nlev)
    rows = table2(ne=args.ne, nproc=args.nparts, cost=cost)
    print(render_table2(rows, k=6 * args.ne * args.ne, nproc=args.nparts))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .cubesphere import cubed_sphere_mesh
    from .experiments import make_partition
    from .graphs import mesh_graph
    from .machine import PerformanceModel, trace_step

    graph = mesh_graph(cubed_sphere_mesh(args.ne))
    part = make_partition(args.ne, args.nparts, args.method)
    trace = trace_step(PerformanceModel(), graph, part)
    print(
        f"K={graph.nvertices} method={args.method} nparts={args.nparts} "
        f"idle={100 * trace.idle_fraction():.0f}%"
    )
    print(trace.render(width=args.width, max_ranks=args.max_ranks))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .cubesphere import cubed_sphere_mesh
    from .experiments import format_table, make_partition
    from .graphs import mesh_graph
    from .partition.analysis import analyze_structure

    graph = mesh_graph(cubed_sphere_mesh(args.ne))
    part = make_partition(args.ne, args.nparts, args.method)
    structure = analyze_structure(graph, part)
    print(
        f"K={graph.nvertices} method={args.method} nparts={args.nparts}: "
        f"{structure.fragmented_parts} fragmented parts, "
        f"max diameter {structure.max_diameter}, "
        f"mean boundary fraction {structure.mean_boundary_fraction:.2f}"
    )
    print(f"cut weight by interface kind: {structure.cut_weight_by_kind}")
    rows = [
        [s.part, s.size, s.components, s.diameter, s.boundary_elements]
        for s in structure.worst_parts(8)
    ]
    print(
        format_table(
            ["part", "size", "components", "diameter", "boundary elems"],
            rows,
            title="Worst parts (most fragmented / stretched)",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(linewidth=120)
    handlers = {
        "curve": _cmd_curve,
        "partition": _cmd_partition,
        "sweep": _cmd_sweep,
        "table2": _cmd_table2,
        "trace": _cmd_trace,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
