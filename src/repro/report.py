"""Plain-text table and series rendering.

Every bench, the service stats, and the telemetry registry print
aligned text tables (the repository's equivalent of the paper's tables
and figure series), so ``pytest benchmarks/`` output and the
``results/`` artifacts are directly comparable with the paper.  This
lives at the top level (not under ``experiments``) because layers
below the experiments package render tables too.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render one x column plus one column per named series."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(vals[i] for vals in series.values())] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)
