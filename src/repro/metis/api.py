"""Public entry point for the METIS-style partitioners.

Mirrors the three algorithms the paper compares (Sec. 2):

* ``"rb"``   — recursive bisection (``pmetis``), best load balance;
* ``"kway"`` — multilevel K-way minimizing edgecut (``kmetis``);
* ``"tv"``   — K-way variant minimizing total communication volume.
"""

from __future__ import annotations

from .._native import LIB as _NATIVE
from ..graphs.csr import CSRGraph
from ..partition.base import Partition
from ..telemetry import inc, span
from .bisection import recursive_bisection
from .kway import multilevel_kway

__all__ = ["part_graph", "METIS_METHODS"]

METIS_METHODS = ("rb", "kway", "tv")

#: Which inner-loop implementation this process selected at import.
KERNELS = "c" if _NATIVE is not None else "python"


def part_graph(
    graph: CSRGraph,
    nparts: int,
    method: str = "kway",
    ubfactor: float | None = None,
    seed: int = 0,
) -> Partition:
    """Partition a graph with a METIS-style algorithm.

    Args:
        graph: Vertex/edge-weighted graph (see
            :func:`repro.graphs.mesh_graph` for the cubed-sphere).
        nparts: Number of parts.
        method: ``"rb"``, ``"kway"`` or ``"tv"``.
        ubfactor: Balance constraint; defaults to the METIS defaults
            (1.001 per bisection for RB, 1.03 global for K-way).
        seed: Determinism seed.

    Returns:
        A validated :class:`Partition` (no empty parts).
    """
    if method not in METIS_METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METIS_METHODS}")
    inc("part_graph_total", method=method, kernels=KERNELS)
    with span("part_graph", "metis", method=method, nparts=int(nparts)):
        if method == "rb":
            # METIS 4's pmetis allowed ~1% imbalance per bisection; the
            # slack compounds over the recursion, which is why the paper's
            # Table 2 shows RB with nonzero LB(nelemd) at 768 processors.
            # Pass ubfactor=1.001 for a strict (near-exact) RB.
            part = recursive_bisection(
                graph,
                nparts,
                ubfactor=ubfactor if ubfactor is not None else 1.01,
                seed=seed,
            )
        else:
            part = multilevel_kway(
                graph,
                nparts,
                ubfactor=ubfactor if ubfactor is not None else 1.03,
                objective="cut" if method == "kway" else "volume",
                seed=seed,
            )
    # RB guarantees non-empty parts; K-way (like METIS 4) may leave a
    # part empty at O(1) vertices per part — callers see an idle rank.
    part.validate(allow_empty=(method != "rb"))
    return part
