"""Initial bisections for the coarsest graph of the multilevel scheme.

Two methods, mirroring METIS's pmetis options:

* *greedy graph growing* (GGGP): grow one side from a pseudo-peripheral
  seed, always absorbing the frontier vertex whose absorption decreases
  the prospective cut the most, until the side reaches its weight
  target; several trials with different seeds keep the best cut;
* *spectral*: split the Fiedler-vector order at the weight target —
  slower but occasionally better on globally "twisted" graphs.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.laplacian import spectral_bisection_order
from ..graphs.traversal import pseudo_peripheral_vertex

__all__ = ["greedy_graph_growing", "spectral_initial_bisection"]


def _split_from_order(
    graph: CSRGraph, order: np.ndarray, target_left: int
) -> np.ndarray:
    """Prefix of ``order`` whose weight best matches ``target_left``."""
    w = graph.vweights[order]
    prefix = np.cumsum(w)
    k = int(np.argmin(np.abs(prefix - target_left)))
    side = np.ones(graph.nvertices, dtype=np.int64)
    side[order[: k + 1]] = 0
    return side


def greedy_graph_growing(
    graph: CSRGraph, target_left: int, seed: int = 0, ntrials: int = 4
) -> np.ndarray:
    """GGGP bisection.

    Args:
        graph: Graph to bisect (need not be connected; leftover
            components are swept into the growing side by weight).
        target_left: Desired total vertex weight of side 0.
        seed: Base seed; each trial perturbs it.
        ntrials: Number of independent growths; best cut wins.

    Returns:
        ``(n,)`` int array of sides (0 or 1).
    """
    n = graph.nvertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(seed)
    best_side: np.ndarray | None = None
    best_cut = np.iinfo(np.int64).max
    for trial in range(ntrials):
        if trial == 0:
            start = pseudo_peripheral_vertex(graph)
        else:
            start = int(rng.integers(n))
        side = np.ones(n, dtype=np.int64)
        in_left = np.zeros(n, dtype=bool)
        weight_left = 0
        # Max-heap of (-gain, tiebreak, vertex); gain = weight to the
        # grown side minus weight to the outside (absorbing a vertex
        # changes the cut by -gain).
        heap: list[tuple[int, int, int]] = []
        counter = 0
        gain_cache = np.zeros(n, dtype=np.int64)

        def push(v: int) -> None:
            nonlocal counter
            heapq.heappush(heap, (-int(gain_cache[v]), counter, v))
            counter += 1

        # Gain of an unabsorbed vertex u: (weight to grown side) minus
        # (weight to outside) = 2 * w(u, left) - total_edge_weight(u).
        frontier_seen = np.zeros(n, dtype=bool)
        total_w = np.zeros(n, dtype=np.int64)
        np.add.at(
            total_w,
            np.repeat(np.arange(n), graph.degrees()),
            graph.eweights,
        )
        gain_cache[start] = -int(total_w[start])
        frontier_seen[start] = True
        push(start)
        while weight_left < target_left:
            while heap:
                negg, _, v = heapq.heappop(heap)
                if not in_left[v] and -negg == gain_cache[v]:
                    break
            else:
                # Heap empty (component exhausted): jump to any
                # unabsorbed vertex.
                rest = np.flatnonzero(~in_left)
                if len(rest) == 0:
                    break
                v = int(rest[0])
            in_left[v] = True
            side[v] = 0
            weight_left += int(graph.vweights[v])
            for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
                u = int(u)
                if in_left[u]:
                    continue
                if not frontier_seen[u]:
                    gain_cache[u] = -int(total_w[u])
                    frontier_seen[u] = True
                gain_cache[u] += 2 * int(w)
                push(u)
        cut = _bisection_cut(graph, side)
        if cut < best_cut:
            best_cut = cut
            best_side = side
    assert best_side is not None
    return best_side


def spectral_initial_bisection(
    graph: CSRGraph, target_left: int, seed: int = 0
) -> np.ndarray:
    """Bisection by splitting the Fiedler order at the weight target."""
    order = spectral_bisection_order(graph, seed)
    return _split_from_order(graph, order, target_left)


def _bisection_cut(graph: CSRGraph, side: np.ndarray) -> int:
    u, v, w = graph.edge_array()
    return int(w[side[u] != side[v]].sum())
