"""Initial bisections for the coarsest graph of the multilevel scheme.

Two methods, mirroring METIS's pmetis options:

* *greedy graph growing* (GGGP): grow one side from a pseudo-peripheral
  seed, always absorbing the frontier vertex whose absorption decreases
  the prospective cut the most, until the side reaches its weight
  target; several trials with different seeds keep the best cut;
* *spectral*: split the Fiedler-vector order at the weight target —
  slower but occasionally better on globally "twisted" graphs.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from .._native import LIB as _NATIVE
from .._native import MAX_BOUND as _MAX_BOUND
from .._native import as_i64p as _p
from ..graphs.csr import CSRGraph
from ..graphs.laplacian import spectral_bisection_order
from ..graphs.traversal import pseudo_peripheral_vertex

__all__ = ["greedy_graph_growing", "spectral_initial_bisection"]


def _split_from_order(
    graph: CSRGraph, order: np.ndarray, target_left: int
) -> np.ndarray:
    """Prefix of ``order`` whose weight best matches ``target_left``."""
    w = graph.vweights[order]
    prefix = np.cumsum(w)
    k = int(np.argmin(np.abs(prefix - target_left)))
    side = np.ones(graph.nvertices, dtype=np.int64)
    side[order[: k + 1]] = 0
    return side


def greedy_graph_growing(
    graph: CSRGraph, target_left: int, seed: int = 0, ntrials: int = 4
) -> np.ndarray:
    """GGGP bisection.

    Args:
        graph: Graph to bisect (need not be connected; leftover
            components are swept into the growing side by weight).
        target_left: Desired total vertex weight of side 0.
        seed: Base seed; each trial perturbs it.
        ntrials: Number of independent growths; best cut wins.

    Returns:
        ``(n,)`` int array of sides (0 or 1).
    """
    n = graph.nvertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # The RNG only feeds the trial-1.. start vertices; a single batched
    # draw yields the same values as the historical per-trial scalar
    # draws (verified bit-identical under fixed seeds).
    starts_arr = np.random.default_rng(seed).integers(n, size=ntrials - 1)
    bound = graph.max_incident_weight()
    if _NATIVE is not None and bound <= _MAX_BOUND:
        starts_np = np.empty(ntrials, dtype=np.int64)
        starts_np[0] = -1  # trial 0: pseudo-peripheral seed
        starts_np[1:] = starts_arr
        out = np.empty(n, dtype=np.int64)
        rc = _NATIVE.ggg_partition(
            n,
            _p(graph.indptr), _p(graph.indices),
            _p(graph.eweights), _p(graph.vweights),
            _p(starts_np), ntrials, target_left, bound, _p(out),
        )
        if rc == 0:
            return out

    # Pure-Python kernels (reference implementation and fallback).
    starts = starts_arr.tolist()
    _, _, _, vweights = graph.adjacency_lists()
    nbrs, wts = graph.neighbor_slices()
    # Gain of an unabsorbed vertex u: (weight to grown side) minus
    # (weight to outside) = 2 * w(u, left) - total_edge_weight(u).
    if n <= 512:
        total_w_l = [sum(wv) for wv in wts]
    else:
        total_w = np.zeros(n, dtype=np.int64)
        np.add.at(
            total_w,
            np.repeat(np.arange(n), graph.degrees()),
            graph.eweights,
        )
        total_w_l = total_w.tolist()
    # Growth gains lie in [-bound, bound]; moderate bounds use the
    # bucket-gain queue (same pop order as the historical lazy heap —
    # see metis.refine), heavy coarse weights fall back to the heap.
    grow = _grow_trial_buckets if bound <= 512 else _grow_trial_heap
    best_side: list[int] | None = None
    best_cut: int | None = None
    for trial in range(ntrials):
        start = pseudo_peripheral_vertex(graph) if trial == 0 else starts[trial - 1]
        side, cut = grow(
            nbrs, wts, vweights, total_w_l, start, target_left, bound,
        )
        if best_cut is None or cut < best_cut:
            best_cut = cut
            best_side = side
    assert best_side is not None
    return np.array(best_side, dtype=np.int64)


def _grow_trial_heap(
    nbrs: list,
    wts: list,
    vweights: list[int],
    total_w_l: list[int],
    start: int,
    target_left: int,
    bound: int,
) -> tuple[list[int], int]:
    """One GGGP growth with a lazy max-heap; returns ``(side, cut)``."""
    n = len(total_w_l)
    side = [1] * n
    in_left = bytearray(n)
    weight_left = 0
    # Max-heap of (-gain, tiebreak, vertex); gain = weight to the
    # grown side minus weight to the outside (absorbing a vertex
    # changes the cut by -gain), so the growth cut is tracked
    # incrementally instead of recomputed per trial.
    heap: list[tuple[int, int, int]] = []
    counter = 1
    gain_cache = [0] * n
    frontier_seen = bytearray(n)
    gain_cache[start] = -total_w_l[start]
    frontier_seen[start] = True
    heapq.heappush(heap, (-gain_cache[start], 0, start))
    cut = 0
    while weight_left < target_left:
        while heap:
            negg, _, v = heapq.heappop(heap)
            if not in_left[v] and -negg == gain_cache[v]:
                break
        else:
            # Heap empty (component exhausted): jump to the
            # first unabsorbed vertex.
            v = next((u for u in range(n) if not in_left[u]), -1)
            if v < 0:
                break
            if not frontier_seen[v]:
                # No absorbed neighbors: absorbing adds its whole
                # incident weight to the cut.
                gain_cache[v] = -total_w_l[v]
        in_left[v] = True
        side[v] = 0
        weight_left += vweights[v]
        cut -= gain_cache[v]
        for u, w in zip(nbrs[v], wts[v]):
            if in_left[u]:
                continue
            if not frontier_seen[u]:
                gain_cache[u] = -total_w_l[u]
                frontier_seen[u] = True
            gain_cache[u] += w + w
            heapq.heappush(heap, (-gain_cache[u], counter, u))
            counter += 1
    return side, cut


def _grow_trial_buckets(
    nbrs: list,
    wts: list,
    vweights: list[int],
    total_w_l: list[int],
    start: int,
    target_left: int,
    bound: int,
) -> tuple[list[int], int]:
    """One GGGP growth with a bucket-gain queue; returns ``(side, cut)``.

    Pop order matches :func:`_grow_trial_heap` exactly (highest gain
    first, FIFO = insertion order within a gain value).  Absorption is
    fused into ``gain_cache``: absorbed vertices get the impossible
    gain ``bound + 1``, failing both the freshness test and the
    neighbor-update guard.
    """
    n = len(total_w_l)
    sent = bound + 1
    side = [1] * n
    weight_left = 0
    # Slot 0 (pseudo-gain -bound - 1) holds a stop sentinel the drain
    # loop reaches exactly when every real entry has been popped; it is
    # re-armed after a component-exhausted fallback so later growth
    # rounds still terminate.
    off = bound + 1
    buckets: list = [None] * (2 * bound + 2)
    buckets[0] = deque((-1,))
    gain_cache = [0] * n
    frontier_seen = bytearray(n)
    g0 = -total_w_l[start]
    gain_cache[start] = g0
    frontier_seen[start] = True
    buckets[g0 + off] = deque((start,))
    maxg = g0
    cut = 0
    while weight_left < target_left:
        while True:
            b = buckets[maxg + off]
            while not b:
                maxg -= 1
                b = buckets[maxg + off]
            v = b.popleft()
            if v < 0 or gain_cache[v] == maxg:
                break
        if v < 0:
            # Queue exhausted (component done): re-arm the sentinel and
            # jump to the first unabsorbed vertex.
            b.append(-1)
            v = next((u for u in range(n) if gain_cache[u] <= bound), -1)
            if v < 0:
                break
            if not frontier_seen[v]:
                # No absorbed neighbors: absorbing adds its whole
                # incident weight to the cut.
                gain_cache[v] = -total_w_l[v]
        side[v] = 0
        weight_left += vweights[v]
        cut -= gain_cache[v]
        gain_cache[v] = sent
        for u, w in zip(nbrs[v], wts[v]):
            g = gain_cache[u]
            if g > bound:
                continue
            if not frontier_seen[u]:
                g = -total_w_l[u]
                frontier_seen[u] = True
            g += w + w
            gain_cache[u] = g
            b = buckets[g + off]
            if b is None:
                buckets[g + off] = deque((u,))
            else:
                b.append(u)
            if g > maxg:
                maxg = g
    return side, cut


def spectral_initial_bisection(
    graph: CSRGraph, target_left: int, seed: int = 0
) -> np.ndarray:
    """Bisection by splitting the Fiedler order at the weight target."""
    order = spectral_bisection_order(graph, seed)
    return _split_from_order(graph, order, target_left)


