"""Multilevel bisection and the recursive-bisection (RB) partitioner.

RB is METIS's ``pmetis`` algorithm: recursively split the graph in two,
each split solved by the full multilevel machinery (coarsen with HEM,
bisect the coarsest graph with greedy graph growing, uncoarsen with FM
refinement at every level).  The paper: "the recursive bisection (RB)
algorithm is best for load balancing, but results in larger edgecuts
and total communication volume" — the tight per-split balance is what
produces that behaviour, and it is enforced here with a per-bisection
imbalance cap that defaults to (essentially) exact.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..partition.base import Partition
from ..telemetry import span
from .coarsen import coarsen_to
from .initial import greedy_graph_growing, spectral_initial_bisection
from .refine import fm_refine_bisection

__all__ = ["multilevel_bisection", "recursive_bisection"]

#: Coarsening stops once the graph is this small; GGGP handles the rest.
COARSEST_NVERTICES = 64


def multilevel_bisection(
    graph: CSRGraph,
    target_left: int,
    ubfactor: float = 1.001,
    seed: int = 0,
    initial: str = "ggg",
) -> np.ndarray:
    """Bisect a graph with the full multilevel pipeline.

    Args:
        graph: Graph to split.
        target_left: Desired total vertex weight of side 0.
        ubfactor: Per-side imbalance cap (default: essentially exact,
            METIS RB behaviour).
        seed: Determinism seed.
        initial: Coarsest-level method, ``"ggg"`` or ``"spectral"``.

    Returns:
        ``(n,)`` int array of sides (0/1).
    """
    total = graph.total_vweight()
    target_right = total - target_left
    if not 0 < target_left < total:
        raise ValueError("target_left must be strictly between 0 and total weight")
    with span("coarsen", "metis"):
        levels = coarsen_to(graph, COARSEST_NVERTICES, seed=seed)
    coarsest = levels[-1].graph if levels else graph
    with span("initial", "metis"):
        if initial == "spectral" and coarsest.nvertices >= 4:
            side = spectral_initial_bisection(coarsest, target_left, seed=seed)
        else:
            side = greedy_graph_growing(coarsest, target_left, seed=seed)
    max_left = max(int(np.floor(ubfactor * target_left + 1e-9)), target_left)
    max_right = max(int(np.floor(ubfactor * target_right + 1e-9)), target_right)
    # Feasibility: the two caps must jointly cover the total weight.
    max_left = min(max_left, total)
    max_right = min(max_right, total)
    if max_left + max_right < total:  # pragma: no cover - defensive
        max_left = total - target_right
        max_right = total - target_left
    with span("refine", "metis"):
        side = fm_refine_bisection(coarsest, side, max_left, max_right)
    # Project back through the hierarchy, refining at every level.
    # levels[i] was contracted from fine_graphs[i].
    fine_graphs = [graph] + [lv.graph for lv in levels[:-1]]
    with span("uncoarsen", "metis"):
        for level, fine in zip(reversed(levels), reversed(fine_graphs)):
            side = side[level.fine_to_coarse]
            side = fm_refine_bisection(fine, side, max_left, max_right)
    return side


def recursive_bisection(
    graph: CSRGraph,
    nparts: int,
    ubfactor: float = 1.001,
    seed: int = 0,
    initial: str = "ggg",
) -> Partition:
    """METIS-style recursive bisection into ``nparts`` parts.

    Part counts need not be powers of two: each split divides the
    target weight proportionally to the part counts of the two halves
    (``pmetis`` semantics).

    Returns:
        A :class:`Partition` labeled ``"rb"``.
    """
    n = graph.nvertices
    if not 1 <= nparts <= n:
        raise ValueError("need 1 <= nparts <= nvertices")
    assignment = np.zeros(n, dtype=np.int64)
    # Queue of (vertex ids, first part, part count, depth).
    stack: list[tuple[np.ndarray, int, int, int]] = [
        (np.arange(n, dtype=np.int64), 0, nparts, 0)
    ]
    while stack:
        ids, first, parts, depth = stack.pop()
        if parts == 1:
            assignment[ids] = first
            continue
        with span("subgraph", "metis"):
            sub, mapping = graph.subgraph(ids)
        left_parts = parts // 2
        right_parts = parts - left_parts
        total = sub.total_vweight()
        target_left = int(round(total * left_parts / parts))
        side = multilevel_bisection(
            sub,
            target_left,
            ubfactor=ubfactor,
            seed=seed + depth * 7919 + first,
            initial=initial,
        )
        left_ids = mapping[side == 0]
        right_ids = mapping[side == 1]
        if len(left_ids) < left_parts or len(right_ids) < right_parts:
            # A side received fewer vertices than the parts it must
            # host (possible when the imbalance slack exceeds the
            # region size).  pmetis never returns empty parts, so fall
            # back to an exact order-based split.
            half = max(
                left_parts,
                min(
                    len(ids) - right_parts,
                    int(round(len(ids) * left_parts / parts)),
                ),
            )
            left_ids, right_ids = ids[:half], ids[half:]
        stack.append((left_ids, first, left_parts, depth + 1))
        stack.append((right_ids, first + left_parts, right_parts, depth + 1))
    return Partition(assignment, nparts=nparts, method="rb")
