"""Multilevel K-way partitioning (METIS KWAY and its TV variant).

``kmetis`` semantics: coarsen the graph aggressively, compute an
initial K-way partition of the coarsest graph via recursive bisection,
then uncoarsen with greedy K-way refinement at every level.  Unlike RB,
the refinement works against a *global* balance constraint (the METIS
default allows 3% imbalance), trading balance for cut — which is
exactly the behaviour the paper measured at O(1) elements per
processor: "The K-way (KWAY) algorithm generates partitions that
minimize edgecuts but may result in sub-optimal load balance."

The TV variant runs the identical pipeline with the refinement gain
switched to total communication volume.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..partition.base import Partition
from ..telemetry import span
from .coarsen import coarsen_to
from .bisection import recursive_bisection
from .refine import greedy_kway_refine

__all__ = ["multilevel_kway"]

#: Coarsening target: METIS stops around ``max(c * nparts, small)``
#: vertices so the coarsest graph still has room for k parts.
COARSEN_VERTICES_PER_PART = 8
MIN_COARSE_VERTICES = 128


def multilevel_kway(
    graph: CSRGraph,
    nparts: int,
    ubfactor: float = 1.03,
    objective: str = "cut",
    seed: int = 0,
) -> Partition:
    """Partition with multilevel K-way.

    Args:
        graph: Graph to partition.
        nparts: Part count.
        ubfactor: Global balance constraint (METIS default 1.03).
        objective: ``"cut"`` (KWAY) or ``"volume"`` (TV).
        seed: Determinism seed.

    Returns:
        A :class:`Partition` labeled ``"kway"`` or ``"tv"``.
    """
    n = graph.nvertices
    if not 1 <= nparts <= n:
        raise ValueError("need 1 <= nparts <= nvertices")
    target = max(COARSEN_VERTICES_PER_PART * nparts, MIN_COARSE_VERTICES)
    with span("coarsen", "metis"):
        levels = coarsen_to(graph, target, seed=seed)
    coarsest = levels[-1].graph if levels else graph
    # Initial K-way partition of the coarsest graph.  A slightly loose
    # per-bisection tolerance mirrors kmetis (the refinement owns the
    # final balance, not the initial split).
    with span("initial", "metis"):
        init = recursive_bisection(
            coarsest, nparts, ubfactor=1.01, seed=seed, initial="ggg"
        )
    assignment = init.assignment.copy()
    with span("refine", "metis"):
        assignment = greedy_kway_refine(
            coarsest, assignment, nparts, ubfactor, objective, seed=seed
        )
    fine_graphs = [graph] + [lv.graph for lv in levels[:-1]]
    with span("uncoarsen", "metis"):
        for level, fine in zip(reversed(levels), reversed(fine_graphs)):
            assignment = assignment[level.fine_to_coarse]
            assignment = greedy_kway_refine(
                fine, assignment, nparts, ubfactor, objective, seed=seed
            )
    method = "kway" if objective == "cut" else "tv"
    # NOTE: like METIS 4's kmetis, the K-way pipeline may return empty
    # parts when nparts approaches the vertex count (refinement merges
    # O(1)-element parts to cut edges within its balance tolerance).
    # This is deliberate — the resulting computational load imbalance
    # at O(1) elements per processor is exactly the METIS behaviour the
    # paper measured SEAM against; the performance model treats an
    # empty part as an idle processor.
    return Partition(assignment, nparts=nparts, method=method)
