"""Graph contraction and the coarsening loop of the multilevel scheme."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from .matching import heavy_edge_matching

__all__ = ["CoarseLevel", "contract", "coarsen_to"]


@dataclass(frozen=True)
class CoarseLevel:
    """One level of the coarsening hierarchy.

    Attributes:
        graph: The coarse graph.
        fine_to_coarse: ``(n_fine,)`` map from fine vertex to its
            coarse vertex.
    """

    graph: CSRGraph
    fine_to_coarse: np.ndarray


def contract(graph: CSRGraph, match: np.ndarray) -> CoarseLevel:
    """Contract a matching into a coarse graph.

    Matched pairs become one coarse vertex whose weight is the pair
    sum; parallel coarse edges are merged with summed weights and
    intra-pair edges vanish (their weight is "hidden" inside the
    coarse vertex — the point of heavy-edge matching).
    """
    n = graph.nvertices
    # Coarse ids: number pairs by their smaller endpoint.
    rep = np.minimum(np.arange(n), match)
    uniq, coarse_of = np.unique(rep, return_inverse=True)
    nc = len(uniq)
    cvw = np.zeros(nc, dtype=np.int64)
    np.add.at(cvw, coarse_of, graph.vweights)
    # Directed fine edges mapped to coarse ids; drop internal edges,
    # merge duplicates by summation.
    src = np.repeat(np.arange(n), graph.degrees())
    csrc = coarse_of[src]
    cdst = coarse_of[graph.indices]
    keep = csrc != cdst
    csrc, cdst, w = csrc[keep], cdst[keep], graph.eweights[keep]
    key = csrc.astype(np.int64) * nc + cdst
    order = np.argsort(key, kind="stable")
    key, w = key[order], w[order]
    uniq_key, start = np.unique(key, return_index=True)
    sums = np.add.reduceat(w, start) if len(key) else np.empty(0, dtype=np.int64)
    usrc = (uniq_key // nc).astype(np.int64)
    udst = (uniq_key % nc).astype(np.int64)
    indptr = np.searchsorted(usrc, np.arange(nc + 1)).astype(np.int64)
    coarse = CSRGraph(
        indptr=indptr, indices=udst.copy(), eweights=sums.astype(np.int64), vweights=cvw
    )
    return CoarseLevel(graph=coarse, fine_to_coarse=coarse_of)


def coarsen_to(
    graph: CSRGraph,
    target_nvertices: int,
    seed: int = 0,
    max_levels: int = 64,
) -> list[CoarseLevel]:
    """Coarsen with HEM until the target size or until progress stalls.

    Coarsening stops when the vertex count is at most
    ``target_nvertices`` or a level shrinks the graph by less than 10%
    (METIS's stall criterion — matchings degrade as the graph densifies).

    Returns:
        The hierarchy, finest-derived level first; empty when the input
        is already small enough.
    """
    levels: list[CoarseLevel] = []
    current = graph
    for lvl in range(max_levels):
        if current.nvertices <= target_nvertices:
            break
        match = heavy_edge_matching(current, seed=seed + lvl)
        level = contract(current, match)
        if level.graph.nvertices > 0.9 * current.nvertices:
            break
        levels.append(level)
        current = level.graph
    return levels
