"""Coarsening matchings: random matching and heavy-edge matching.

First stage of the multilevel scheme (Karypis & Kumar): find a maximal
matching and contract matched pairs.  Heavy-edge matching (HEM) picks,
for each unmatched vertex, the unmatched neighbor connected by the
heaviest edge, which hides as much edge weight as possible inside
coarse vertices and is the workhorse of METIS.
"""

from __future__ import annotations

import numpy as np

from .._native import LIB as _NATIVE
from .._native import as_i64p as _p
from ..graphs.csr import CSRGraph

__all__ = ["random_matching", "heavy_edge_matching"]


def _visit_order(graph: CSRGraph, rng: np.random.Generator, sort_by_degree: bool) -> np.ndarray:
    order = rng.permutation(graph.nvertices)
    if sort_by_degree:
        # Visit low-degree vertices first (METIS's SHEM tweak): they
        # have the fewest matching options, so serve them early.
        deg = graph.degrees()
        order = order[np.argsort(deg[order], kind="stable")]
    return order


def random_matching(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Maximal matching by random vertex visitation.

    Visit/claim kernel: the visit order is drawn once (NumPy), then the
    sequential claim loop runs over plain-int adjacency lists.  The RNG
    call sequence (one ``integers`` draw per vertex with free
    neighbors) matches the historical per-vertex NumPy loop exactly,
    so matchings are bit-identical under a fixed seed.

    Returns:
        ``(n,)`` int array ``match`` with ``match[v]`` the partner of
        ``v`` (``match[v] == v`` for unmatched vertices).
    """
    rng = np.random.default_rng(seed)
    n = graph.nvertices
    nbrs, _ = graph.neighbor_slices()
    match = list(range(n))
    matched = bytearray(n)
    for v in _visit_order(graph, rng, sort_by_degree=False).tolist():
        if matched[v]:
            continue
        free = [u for u in nbrs[v] if not matched[u]]
        if free:
            u = free[int(rng.integers(len(free)))]
            match[v] = u
            match[u] = v
            matched[v] = matched[u] = 1
    return np.array(match, dtype=np.int64)


def heavy_edge_matching(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Maximal matching preferring heavy edges (HEM/SHEM).

    Same claim-kernel structure as :func:`random_matching`; each vertex
    claims its heaviest free neighbor, first-in-adjacency-order on
    ties (the ``argmax`` tie-break of the historical implementation).

    Returns:
        ``(n,)`` int array as in :func:`random_matching`.
    """
    rng = np.random.default_rng(seed)
    n = graph.nvertices
    order = _visit_order(graph, rng, sort_by_degree=True)
    if _NATIVE is not None:
        order = np.ascontiguousarray(order, dtype=np.int64)
        match_arr = np.empty(n, dtype=np.int64)
        rc = _NATIVE.hem_claim(
            n,
            _p(graph.indptr), _p(graph.indices), _p(graph.eweights),
            _p(order), _p(match_arr),
        )
        if rc == 0:
            return match_arr
    nbrs, wts = graph.neighbor_slices()
    match = list(range(n))
    matched = bytearray(n)
    for v in order.tolist():
        if matched[v]:
            continue
        best_w = -1
        best_u = -1
        for u, w in zip(nbrs[v], wts[v]):
            if not matched[u] and w > best_w:
                best_w = w
                best_u = u
        if best_u >= 0:
            match[v] = best_u
            match[best_u] = v
            matched[v] = matched[best_u] = 1
    return np.array(match, dtype=np.int64)
