"""Coarsening matchings: random matching and heavy-edge matching.

First stage of the multilevel scheme (Karypis & Kumar): find a maximal
matching and contract matched pairs.  Heavy-edge matching (HEM) picks,
for each unmatched vertex, the unmatched neighbor connected by the
heaviest edge, which hides as much edge weight as possible inside
coarse vertices and is the workhorse of METIS.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = ["random_matching", "heavy_edge_matching"]


def _visit_order(graph: CSRGraph, rng: np.random.Generator, sort_by_degree: bool) -> np.ndarray:
    order = rng.permutation(graph.nvertices)
    if sort_by_degree:
        # Visit low-degree vertices first (METIS's SHEM tweak): they
        # have the fewest matching options, so serve them early.
        deg = graph.degrees()
        order = order[np.argsort(deg[order], kind="stable")]
    return order


def random_matching(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Maximal matching by random vertex visitation.

    Returns:
        ``(n,)`` int array ``match`` with ``match[v]`` the partner of
        ``v`` (``match[v] == v`` for unmatched vertices).
    """
    rng = np.random.default_rng(seed)
    n = graph.nvertices
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    for v in _visit_order(graph, rng, sort_by_degree=False):
        v = int(v)
        if matched[v]:
            continue
        nbrs = graph.neighbors(v)
        free = nbrs[~matched[nbrs]]
        if len(free):
            u = int(free[rng.integers(len(free))])
            match[v] = u
            match[u] = v
            matched[v] = matched[u] = True
    return match


def heavy_edge_matching(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Maximal matching preferring heavy edges (HEM/SHEM).

    Returns:
        ``(n,)`` int array as in :func:`random_matching`.
    """
    rng = np.random.default_rng(seed)
    n = graph.nvertices
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    for v in _visit_order(graph, rng, sort_by_degree=True):
        v = int(v)
        if matched[v]:
            continue
        nbrs = graph.neighbors(v)
        wts = graph.neighbor_weights(v)
        free = ~matched[nbrs]
        if free.any():
            cand_n = nbrs[free]
            cand_w = wts[free]
            u = int(cand_n[int(np.argmax(cand_w))])
            match[v] = u
            match[u] = v
            matched[v] = matched[u] = True
    return match
