"""Partition refinement: FM bisection passes and greedy K-way passes.

Two refiners, matching the two halves of METIS:

* :func:`fm_refine_bisection` — Fiduccia-Mattheyses with per-pass
  rollback, used during uncoarsening of every bisection (RB method);
* :func:`greedy_kway_refine` — Karypis & Kumar's greedy K-way
  refinement: sweep boundary vertices, move each to the neighboring
  part with the best gain subject to a balance constraint.  The *gain
  objective* is pluggable: ``"cut"`` (Δ edge-weight cut, the KWAY
  objective) or ``"volume"`` (Δ total communication volume, the TV
  objective).  The paper observed that METIS's TV variant does not
  always deliver the smallest TCV; keeping both objectives in one code
  path lets the Table-2 bench probe exactly that.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = ["fm_refine_bisection", "greedy_kway_refine", "balance_constraint"]


def balance_constraint(
    total_weight: int, nparts: int, ubfactor: float
) -> int:
    """Maximum part weight allowed under an imbalance factor.

    METIS semantics: a part may weigh up to ``ubfactor`` times the
    ideal average, and — because vertices are atomic — never less than
    ``ceil(total / nparts)`` (otherwise no legal partition exists when
    weights don't divide evenly).
    """
    ideal = total_weight / nparts
    # Ceil semantics: with atomic vertices a tolerance of x% can only
    # be realized by rounding up, which is also what lets kmetis trade
    # one extra element of imbalance for cut at O(1) elements/processor
    # (the regime the paper studies).
    return max(int(np.ceil(ubfactor * ideal - 1e-9)), int(np.ceil(ideal - 1e-9)))


def _external_internal(
    graph: CSRGraph, side: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-vertex external/internal degree for a 2-way partition."""
    n = graph.nvertices
    src = np.repeat(np.arange(n), graph.degrees())
    same = side[src] == side[graph.indices]
    ed = np.zeros(n, dtype=np.int64)
    idg = np.zeros(n, dtype=np.int64)
    np.add.at(ed, src[~same], graph.eweights[~same])
    np.add.at(idg, src[same], graph.eweights[same])
    return ed, idg


def _rebalance_bisection(
    graph: CSRGraph,
    side: np.ndarray,
    caps: tuple[int, int],
    weights: list[int],
) -> None:
    """Move min-cut-damage vertices off an overweight side (in place).

    Coarse-level bisections can violate the weight caps by up to one
    coarse-vertex weight (coarse vertices are atomic); once projected
    to a finer level the atoms are smaller, and this pass restores
    feasibility before FM optimizes the cut.  Best-effort: stops when
    no move can make progress.
    """
    while True:
        over = next((s for s in (0, 1) if weights[s] > caps[s]), None)
        if over is None:
            return
        other = 1 - over
        ed, idg = _external_internal(graph, side)
        gain = ed - idg
        candidates = np.flatnonzero(side == over)
        room = caps[other] - weights[other]
        fits = candidates[graph.vweights[candidates] <= room]
        if len(fits) == 0:
            return
        v = int(fits[np.argmax(gain[fits])])
        vw = int(graph.vweights[v])
        side[v] = other
        weights[over] -= vw
        weights[other] += vw


def fm_refine_bisection(
    graph: CSRGraph,
    side: np.ndarray,
    max_left_weight: int,
    max_right_weight: int,
    max_passes: int = 8,
) -> np.ndarray:
    """Fiduccia-Mattheyses refinement of a bisection.

    Runs passes of single-vertex moves: each pass tentatively moves
    every vertex at most once in best-gain-first order (allowing
    negative-gain hill climbing), then rolls back to the best prefix.
    Stops when a pass yields no improvement.

    Args:
        graph: The graph.
        side: ``(n,)`` initial sides (0/1); not modified.
        max_left_weight: Weight cap for side 0.
        max_right_weight: Weight cap for side 1.
        max_passes: Upper bound on passes (convergence usually takes
            2-4).

    Returns:
        The refined side array.
    """
    side = side.astype(np.int64).copy()
    n = graph.nvertices
    caps = (max_left_weight, max_right_weight)
    weights = [
        int(graph.vweights[side == 0].sum()),
        int(graph.vweights[side == 1].sum()),
    ]
    _rebalance_bisection(graph, side, caps, weights)
    # During a pass one extra atom may sit on either side (classic FM
    # lets the frontier cross the balance line and rolls back to the
    # best *feasible* prefix); otherwise a tight, balanced start would
    # admit no moves at all.
    slack = int(graph.vweights.max()) if n else 0
    pass_caps = (caps[0] + slack, caps[1] + slack)

    def feasible() -> bool:
        return weights[0] <= caps[0] and weights[1] <= caps[1]

    for _ in range(max_passes):
        ed, idg = _external_internal(graph, side)
        gain = ed - idg
        locked = np.zeros(n, dtype=bool)
        heap: list[tuple[int, int, int]] = []
        counter = 0
        for v in range(n):
            heapq.heappush(heap, (-int(gain[v]), counter, v))
            counter += 1
        moves: list[int] = []
        cum = 0
        best_cum = 0
        best_len = 0
        while heap:
            negg, _, v = heapq.heappop(heap)
            if locked[v] or -negg != gain[v]:
                continue
            frm = int(side[v])
            to = 1 - frm
            vw = int(graph.vweights[v])
            if weights[to] + vw > pass_caps[to]:
                continue
            # Execute the tentative move.
            locked[v] = True
            side[v] = to
            weights[frm] -= vw
            weights[to] += vw
            cum += int(gain[v])
            moves.append(v)
            if cum > best_cum and feasible():
                best_cum = cum
                best_len = len(moves)
            for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
                u = int(u)
                if locked[u]:
                    continue
                # Edge u-v flips between internal and external.
                delta = 2 * int(w) if side[u] == frm else -2 * int(w)
                gain[u] += delta
                heapq.heappush(heap, (-int(gain[u]), counter, u))
                counter += 1
        # Roll back past the best prefix.
        for v in moves[best_len:]:
            frm = int(side[v])
            to = 1 - frm
            vw = int(graph.vweights[v])
            side[v] = to
            weights[frm] -= vw
            weights[to] += vw
        if best_cum <= 0:
            break
    return side


def _volume_gain(
    graph: CSRGraph,
    assignment: np.ndarray,
    v: int,
    to: int,
) -> int:
    """METIS TotalVol gain: change in count-based volume if ``v`` moves.

    METIS's TV objective models the volume of a vertex as
    ``vsize * |distinct external parts among its neighbors|`` (unit
    vertex sizes here).  Note this is a *model*: the physically
    measured TCV of :mod:`repro.partition.metrics` weighs every cut
    interface by its shared boundary points, so minimizing this model
    can fail to minimize measured TCV — the anomaly the paper reports
    for METIS's TV partitions ("directly contradicts the expected
    minimization property").
    """
    frm = int(assignment[v])
    # Change of v's own external-part count.
    nbr_parts = [int(assignment[u]) for u in graph.neighbors(v)]
    before_v = len({p for p in nbr_parts if p != frm})
    after_v = len({p for p in nbr_parts if p != to})
    gain = before_v - after_v
    # Change of each neighbor's external-part count: moving v makes
    # `frm` possibly vanish from u's neighbor parts and `to` possibly
    # appear.
    for u in graph.neighbors(v):
        u = int(u)
        pu = int(assignment[u])
        cnt_frm = 0
        cnt_to = 0
        for x in graph.neighbors(u):
            px = int(assignment[x])
            if px == frm:
                cnt_frm += 1
            if px == to:
                cnt_to += 1
        if frm != pu and cnt_frm == 1:  # v was u's only `frm` neighbor
            gain += 1
        if to != pu and cnt_to == 0:  # move introduces `to` at u
            gain -= 1
    return gain


def greedy_kway_refine(
    graph: CSRGraph,
    assignment: np.ndarray,
    nparts: int,
    ubfactor: float = 1.03,
    objective: str = "cut",
    max_passes: int = 8,
    seed: int = 0,
) -> np.ndarray:
    """Greedy K-way refinement (METIS KWAY / TV uncoarsening step).

    Sweeps boundary vertices in random order; a vertex moves to the
    adjacent part with the largest positive gain whose weight cap
    allows it.  Zero-gain moves are taken only when they improve
    balance (move from the heaviest overfull part), which is METIS's
    escape hatch for projected imbalance.

    Args:
        graph: The graph.
        assignment: ``(n,)`` initial part ids; not modified.
        nparts: Part count.
        ubfactor: Balance constraint (1.03 = METIS default 3%).
        objective: ``"cut"`` or ``"volume"``.
        max_passes: Pass limit.
        seed: Sweep-order seed.

    Returns:
        Refined assignment array.
    """
    if objective not in ("cut", "volume"):
        raise ValueError(f"unknown objective {objective!r}")
    assignment = assignment.astype(np.int64).copy()
    n = graph.nvertices
    rng = np.random.default_rng(seed)
    total = graph.total_vweight()
    cap = balance_constraint(total, nparts, ubfactor)
    ideal_cap = int(np.ceil(total / nparts - 1e-9))
    pweights = np.bincount(assignment, weights=graph.vweights, minlength=nparts).astype(
        np.int64
    )
    for _ in range(max_passes):
        improved = False
        order = rng.permutation(n)
        for v in order:
            v = int(v)
            frm = int(assignment[v])
            nbrs = graph.neighbors(v)
            wts = graph.neighbor_weights(v)
            nbr_parts = assignment[nbrs]
            if (nbr_parts == frm).all():
                continue  # interior vertex
            vw = int(graph.vweights[v])
            # Connectivity of v to each adjacent part.
            conn: dict[int, int] = {}
            for p, w in zip(nbr_parts, wts):
                conn[int(p)] = conn.get(int(p), 0) + int(w)
            internal = conn.get(frm, 0)
            best_to = -1
            best_gain = 0
            best_conn = -1
            for p, c in conn.items():
                if p == frm:
                    continue
                if pweights[p] + vw > cap:
                    continue
                if objective == "cut":
                    gain = c - internal
                else:
                    gain = _volume_gain(graph, assignment, v, p)
                if best_to < 0 or gain > best_gain or (
                    gain == best_gain and c > best_conn
                ):
                    best_to, best_gain, best_conn = p, gain, c
            if best_to < 0:
                continue
            # Accept strictly improving moves; otherwise only moves
            # that drain an over-full part, chosen so a monotone
            # potential (total overflow above the relevant cap)
            # strictly decreases — this is the balance escape hatch
            # and it cannot ping-pong.
            accept = best_gain > 0
            if not accept and pweights[frm] > cap:
                accept = True  # negative gain allowed to fix hard overflow
            if (
                not accept
                and best_gain == 0
                and pweights[frm] > ideal_cap >= pweights[best_to] + vw
            ):
                accept = True
            if accept:
                assignment[v] = best_to
                pweights[frm] -= vw
                pweights[best_to] += vw
                improved = True
        if not improved:
            break
    return assignment
