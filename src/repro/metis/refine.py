"""Partition refinement: FM bisection passes and greedy K-way passes.

Two refiners, matching the two halves of METIS:

* :func:`fm_refine_bisection` — Fiduccia-Mattheyses with per-pass
  rollback, used during uncoarsening of every bisection (RB method);
* :func:`greedy_kway_refine` — Karypis & Kumar's greedy K-way
  refinement: sweep boundary vertices, move each to the neighboring
  part with the best gain subject to a balance constraint.  The *gain
  objective* is pluggable: ``"cut"`` (Δ edge-weight cut, the KWAY
  objective) or ``"volume"`` (Δ total communication volume, the TV
  objective).  The paper observed that METIS's TV variant does not
  always deliver the smallest TCV; keeping both objectives in one code
  path lets the Table-2 bench probe exactly that.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from .._native import LIB as _NATIVE
from .._native import MAX_BOUND as _MAX_BOUND
from .._native import as_i64p as _p
from ..graphs.csr import CSRGraph

__all__ = ["fm_refine_bisection", "greedy_kway_refine", "balance_constraint"]


def balance_constraint(
    total_weight: int, nparts: int, ubfactor: float
) -> int:
    """Maximum part weight allowed under an imbalance factor.

    METIS semantics: a part may weigh up to ``ubfactor`` times the
    ideal average, and — because vertices are atomic — never less than
    ``ceil(total / nparts)`` (otherwise no legal partition exists when
    weights don't divide evenly).
    """
    ideal = total_weight / nparts
    # Ceil semantics: with atomic vertices a tolerance of x% can only
    # be realized by rounding up, which is also what lets kmetis trade
    # one extra element of imbalance for cut at O(1) elements/processor
    # (the regime the paper studies).
    return max(int(np.ceil(ubfactor * ideal - 1e-9)), int(np.ceil(ideal - 1e-9)))


def _external_internal(
    graph: CSRGraph, side: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-vertex external/internal degree for a 2-way partition."""
    n = graph.nvertices
    src = graph.edge_sources()
    same = side[src] == side[graph.indices]
    ed = np.zeros(n, dtype=np.int64)
    idg = np.zeros(n, dtype=np.int64)
    np.add.at(ed, src[~same], graph.eweights[~same])
    np.add.at(idg, src[same], graph.eweights[same])
    return ed, idg


def _fm_gains(
    graph: CSRGraph,
    side_l: list[int],
    nbrs: list,
    wts: list,
) -> list[int]:
    """Per-vertex FM gain (external - internal degree), as int list.

    Small graphs (the bulk of the recursive-bisection workload) use a
    plain-int loop; larger ones the vectorized reduction.  Both are
    exact integer arithmetic, hence interchangeable.
    """
    n = len(side_l)
    if n > 512:
        ed, idg = _external_internal(graph, np.array(side_l, dtype=np.int64))
        return (ed - idg).tolist()
    gain = [0] * n
    for v in range(n):
        sv = side_l[v]
        g = 0
        for u, w in zip(nbrs[v], wts[v]):
            g += w if side_l[u] != sv else -w
        gain[v] = g
    return gain


def _rebalance_bisection(
    graph: CSRGraph,
    side: np.ndarray,
    caps: tuple[int, int],
    weights: list[int],
) -> None:
    """Move min-cut-damage vertices off an overweight side (in place).

    Coarse-level bisections can violate the weight caps by up to one
    coarse-vertex weight (coarse vertices are atomic); once projected
    to a finer level the atoms are smaller, and this pass restores
    feasibility before FM optimizes the cut.  Best-effort: stops when
    no move can make progress.
    """
    while True:
        over = next((s for s in (0, 1) if weights[s] > caps[s]), None)
        if over is None:
            return
        other = 1 - over
        ed, idg = _external_internal(graph, side)
        gain = ed - idg
        candidates = np.flatnonzero(side == over)
        room = caps[other] - weights[other]
        fits = candidates[graph.vweights[candidates] <= room]
        if len(fits) == 0:
            return
        v = int(fits[np.argmax(gain[fits])])
        vw = int(graph.vweights[v])
        side[v] = other
        weights[over] -= vw
        weights[other] += vw


def fm_refine_bisection(
    graph: CSRGraph,
    side: np.ndarray,
    max_left_weight: int,
    max_right_weight: int,
    max_passes: int = 8,
) -> np.ndarray:
    """Fiduccia-Mattheyses refinement of a bisection.

    Runs passes of single-vertex moves: each pass tentatively moves
    every vertex at most once in best-gain-first order (allowing
    negative-gain hill climbing), then rolls back to the best prefix.
    Stops when a pass yields no improvement.

    Args:
        graph: The graph.
        side: ``(n,)`` initial sides (0/1); not modified.
        max_left_weight: Weight cap for side 0.
        max_right_weight: Weight cap for side 1.
        max_passes: Upper bound on passes (convergence usually takes
            2-4).

    Returns:
        The refined side array.
    """
    n = graph.nvertices
    caps = (max_left_weight, max_right_weight)
    side_arr = np.array(side, dtype=np.int64)
    w1 = int(side_arr @ graph.vweights) if n else 0
    w0 = graph.total_vweight() - w1
    if w0 > caps[0] or w1 > caps[1]:
        # Rare projected-cap violation: run the vectorized rebalance
        # before the pass loop.
        weights = [w0, w1]
        _rebalance_bisection(graph, side_arr, caps, weights)
        w0, w1 = weights
    if not len(graph.indices):
        # Edgeless graph: every gain is 0, so a pass moves vertices,
        # never beats best_cum = 0, and rolls everything back.
        return side_arr
    # During a pass one extra atom may sit on either side (classic FM
    # lets the frontier cross the balance line and rolls back to the
    # best *feasible* prefix); otherwise a tight, balanced start would
    # admit no moves at all.
    slack = graph.max_vweight()
    pass_caps = (caps[0] + slack, caps[1] + slack)
    bound = graph.max_incident_weight()
    if _NATIVE is not None and bound <= _MAX_BOUND:
        rc = _NATIVE.fm_refine(
            n,
            _p(graph.indptr), _p(graph.indices),
            _p(graph.eweights), _p(graph.vweights),
            _p(side_arr),
            caps[0], caps[1], pass_caps[0], pass_caps[1],
            max_passes, bound, w0, w1,
        )
        if rc == 0:
            return side_arr

    # Pure-Python kernels (reference implementation and fallback).
    # The pass loop works over the cached adjacency lists; gains are
    # (re)initialized at each pass start.  Two exactly-equivalent
    # priority structures back the best-gain-first order: a
    # bucket-gain queue (gains are bounded by the largest incident
    # edge weight, so an O(1) FIFO bucket per gain value reproduces
    # the lazy heap's (-gain, insertion-counter) pop order), with a
    # binary-heap fallback for weight-heavy coarse graphs whose gain
    # range would make bucket scans slower than the heap.
    _, _, _, vweights = graph.adjacency_lists()
    nbrs, wts = graph.neighbor_slices()
    side_l: list[int] = side_arr.tolist()
    for _ in range(max_passes):
        if bound <= 512:
            gain, buckets, maxg = _seed_gain_buckets(
                graph, side_l, nbrs, wts, bound
            )
            w0, w1, best_cum = _fm_pass_buckets(
                nbrs, wts, vweights, side_l, gain,
                buckets, maxg, w0, w1, caps, pass_caps, bound,
            )
        else:
            gain = _fm_gains(graph, side_l, nbrs, wts)
            w0, w1, best_cum = _fm_pass_heap(
                nbrs, wts, vweights, side_l, gain,
                w0, w1, caps, pass_caps,
            )
        if best_cum <= 0:
            break
    return np.array(side_l, dtype=np.int64)


def _seed_gain_buckets(
    graph: CSRGraph,
    side_l: list[int],
    nbrs: list,
    wts: list,
    bound: int,
) -> tuple[list[int], list, int]:
    """Initial gains plus the seeded bucket queue for one FM pass.

    Buckets are a flat list indexed by ``gain + bound``; each slot is a
    FIFO deque of vertices in index order, matching the pop order of a
    lazy heap seeded with ``(-gain[v], v)`` keys.  Small graphs fuse
    the gain loop and the seeding; larger ones compute gains
    vectorized and seed via a stable sort (ties resolved by index,
    preserving the same FIFO order).
    """
    n = len(side_l)
    # Slot 0 (gain -bound - 1, below any real gain) holds a permanent
    # stop sentinel: the drain loop reaches it exactly when every real
    # entry has been popped, replacing a per-operation pending counter.
    off = bound + 1
    buckets: list = [None] * (2 * bound + 2)
    buckets[0] = deque((-1,))
    maxg = -bound
    if n <= 96:
        gain = [0] * n
        for v in range(n):
            sv = side_l[v]
            g = 0
            for u, w in zip(nbrs[v], wts[v]):
                g += w if side_l[u] != sv else -w
            gain[v] = g
            b = buckets[g + off]
            if b is None:
                buckets[g + off] = deque((v,))
                if g > maxg:
                    maxg = g
            else:
                b.append(v)
        return gain, buckets, maxg
    ed, idg = _external_internal(graph, np.array(side_l, dtype=np.int64))
    gain_arr = ed - idg
    order = np.argsort(-gain_arr, kind="stable")
    sorted_g = gain_arr[order]
    # Runs of equal gain become one FIFO each (stable sort keeps the
    # vertices within a run in index order).
    starts = np.flatnonzero(np.diff(sorted_g)) + 1
    prev = 0
    for stop in starts.tolist() + [n]:
        g = int(sorted_g[prev])
        buckets[g + off] = deque(order[prev:stop].tolist())
        prev = stop
    if n:
        maxg = int(sorted_g[0])
    return gain_arr.tolist(), buckets, maxg


def _fm_pass_heap(
    nbrs: list,
    wts: list,
    vweights: list[int],
    side_l: list[int],
    gain: list[int],
    w0: int,
    w1: int,
    caps: tuple[int, int],
    pass_caps: tuple[int, int],
) -> tuple[int, int, int]:
    """One FM pass with a lazy binary heap; mutates ``side_l``."""
    n = len(side_l)
    locked = bytearray(n)
    # Building via heapify is equivalent to n pushes: every key is
    # unique (the tiebreak counter), so the pop order is the same.
    heap: list[tuple[int, int, int]] = [(-gain[v], v, v) for v in range(n)]
    heapq.heapify(heap)
    counter = n
    moves: list[int] = []
    cum = 0
    best_cum = 0
    best_len = 0
    while heap:
        negg, _, v = heapq.heappop(heap)
        if locked[v] or -negg != gain[v]:
            continue
        frm = side_l[v]
        to = 1 - frm
        vw = vweights[v]
        if (w1 if to else w0) + vw > pass_caps[to]:
            continue
        # Execute the tentative move.
        locked[v] = 1
        side_l[v] = to
        if frm == 0:
            w0 -= vw
            w1 += vw
        else:
            w1 -= vw
            w0 += vw
        cum += gain[v]
        moves.append(v)
        if cum > best_cum and w0 <= caps[0] and w1 <= caps[1]:
            best_cum = cum
            best_len = len(moves)
        for u, w in zip(nbrs[v], wts[v]):
            if locked[u]:
                continue
            # Edge u-v flips between internal and external.
            gain[u] += 2 * w if side_l[u] == frm else -2 * w
            heapq.heappush(heap, (-gain[u], counter, u))
            counter += 1
    return _fm_rollback(side_l, vweights, moves, best_len, w0, w1, best_cum)


def _fm_pass_buckets(
    nbrs: list,
    wts: list,
    vweights: list[int],
    side_l: list[int],
    gain: list[int],
    buckets: list,
    maxg: int,
    w0: int,
    w1: int,
    caps: tuple[int, int],
    pass_caps: tuple[int, int],
    bound: int,
) -> tuple[int, int, int]:
    """One FM pass over a pre-seeded bucket queue; mutates ``side_l``.

    Entries live in a FIFO bucket per gain value (gains lie in
    ``[-bound, bound]``, so buckets are a flat list indexed by
    ``gain + bound + 1``, slot 0 being the stop sentinel); popping
    always drains the highest non-empty bucket.  Because the lazy heap
    pops its (unique) keys in ``(-gain, counter)`` order and bucket
    FIFO preserves insertion (= counter) order within a gain value,
    the two structures process the exact same entry sequence.  Locking
    is fused into ``gain``: a moved vertex's gain is set to
    ``bound + 1``, an impossible value that fails both the freshness
    test at pop time and the ``<= bound`` test in the neighbor update.
    """
    off = bound + 1
    locked_mark = bound + 1
    cap0, cap1 = caps
    pcap0, pcap1 = pass_caps
    moves: list[int] = []
    app_move = moves.append
    cum = 0
    best_cum = 0
    best_len = 0
    b = buckets[maxg + off]
    while True:
        while not b:
            maxg -= 1
            b = buckets[maxg + off]
        v = b.popleft()
        if maxg != gain[v]:
            # Stale entry (or the sentinel, whose pseudo-gain is below
            # every real gain so the test always fires for it).
            if v < 0:
                break
            continue
        frm = side_l[v]
        vw = vweights[v]
        if frm == 0:
            if w1 + vw > pcap1:
                continue
            w0 -= vw
            w1 += vw
        else:
            if w0 + vw > pcap0:
                continue
            w1 -= vw
            w0 += vw
        # Execute the tentative move.
        gain[v] = locked_mark
        side_l[v] = 1 - frm
        cum += maxg
        app_move(v)
        if cum > best_cum and w0 <= cap0 and w1 <= cap1:
            best_cum = cum
            best_len = len(moves)
        for u, w in zip(nbrs[v], wts[v]):
            g = gain[u]
            if g > bound:
                continue
            # Edge u-v flips between internal and external.
            g += w + w if side_l[u] == frm else -w - w
            gain[u] = g
            bu = buckets[g + off]
            if bu is None:
                buckets[g + off] = deque((u,))
            else:
                bu.append(u)
            if g > maxg:
                maxg = g
        b = buckets[maxg + off]
    return _fm_rollback(side_l, vweights, moves, best_len, w0, w1, best_cum)


def _fm_rollback(
    side_l: list[int],
    vweights: list[int],
    moves: list[int],
    best_len: int,
    w0: int,
    w1: int,
    best_cum: int,
) -> tuple[int, int, int]:
    """Undo the moves past the best feasible prefix of an FM pass."""
    for v in moves[best_len:]:
        to = 1 - side_l[v]
        vw = vweights[v]
        side_l[v] = to
        if to == 0:
            w1 -= vw
            w0 += vw
        else:
            w0 -= vw
            w1 += vw
    return w0, w1, best_cum


class _VolumeGainKernel:
    """Batched METIS TotalVol gain: Δ count-based volume if ``v`` moves.

    METIS's TV objective models the volume of a vertex as
    ``vsize * |distinct external parts among its neighbors|`` (unit
    vertex sizes here).  Note this is a *model*: the physically
    measured TCV of :mod:`repro.partition.metrics` weighs every cut
    interface by its shared boundary points, so minimizing this model
    can fail to minimize measured TCV — the anomaly the paper reports
    for METIS's TV partitions ("directly contradicts the expected
    minimization property").

    The historical implementation recomputed each neighbor's
    part-count census per candidate part — ``O(deg² · ncand)`` NumPy
    scalar work per boundary vertex.  This kernel builds the census
    once per vertex (:meth:`prepare`), after which each candidate
    evaluates in ``O(deg)`` plain-int lookups (:meth:`gain`), with
    identical integer results.
    """

    def __init__(self, nbrs: list) -> None:
        self._nbrs = nbrs
        self._frm = 0
        self._base = 0
        self._before_v = 0
        self._nbr_parts: set[int] = set()
        self._census: list[tuple[int, dict[int, int]]] = []

    def prepare(self, assignment: list[int], v: int, frm: int) -> None:
        """Census the two-hop neighborhood of ``v`` under ``assignment``."""
        nbrs = self._nbrs
        self._frm = frm
        self._nbr_parts = {assignment[u] for u in nbrs[v]}
        self._before_v = len(self._nbr_parts - {frm})
        census = []
        base = 0
        for u in nbrs[v]:
            pu = assignment[u]
            cnt: dict[int, int] = {}
            for x in nbrs[u]:
                px = assignment[x]
                cnt[px] = cnt.get(px, 0) + 1
            # Moving v away may erase `frm` from u's neighbor parts;
            # this term does not depend on the destination.
            if frm != pu and cnt.get(frm, 0) == 1:
                base += 1
            census.append((pu, cnt))
        self._base = base
        self._census = census

    def gain(self, to: int) -> int:
        """Gain of moving the prepared vertex to part ``to``."""
        after_v = len(self._nbr_parts - {to})
        g = self._before_v - after_v + self._base
        for pu, cnt in self._census:
            if to != pu and cnt.get(to, 0) == 0:  # move introduces `to` at u
                g -= 1
        return g


def _volume_gain(
    graph: CSRGraph,
    assignment: np.ndarray,
    v: int,
    to: int,
) -> int:
    """One-off TotalVol gain (thin wrapper over :class:`_VolumeGainKernel`)."""
    nbrs, _ = graph.neighbor_slices()
    kernel = _VolumeGainKernel(nbrs)
    assign_l = np.asarray(assignment).astype(np.int64).tolist()
    kernel.prepare(assign_l, int(v), assign_l[int(v)])
    return kernel.gain(int(to))


def greedy_kway_refine(
    graph: CSRGraph,
    assignment: np.ndarray,
    nparts: int,
    ubfactor: float = 1.03,
    objective: str = "cut",
    max_passes: int = 8,
    seed: int = 0,
) -> np.ndarray:
    """Greedy K-way refinement (METIS KWAY / TV uncoarsening step).

    Sweeps boundary vertices in random order; a vertex moves to the
    adjacent part with the largest positive gain whose weight cap
    allows it.  Zero-gain moves are taken only when they improve
    balance (move from the heaviest overfull part), which is METIS's
    escape hatch for projected imbalance.

    Args:
        graph: The graph.
        assignment: ``(n,)`` initial part ids; not modified.
        nparts: Part count.
        ubfactor: Balance constraint (1.03 = METIS default 3%).
        objective: ``"cut"`` or ``"volume"``.
        max_passes: Pass limit.
        seed: Sweep-order seed.

    Returns:
        Refined assignment array.
    """
    if objective not in ("cut", "volume"):
        raise ValueError(f"unknown objective {objective!r}")
    n = graph.nvertices
    rng = np.random.default_rng(seed)
    total = graph.total_vweight()
    cap = balance_constraint(total, nparts, ubfactor)
    ideal_cap = int(np.ceil(total / nparts - 1e-9))
    assign: list[int] = assignment.astype(np.int64).tolist()
    pweights: list[int] = (
        np.bincount(assignment, weights=graph.vweights, minlength=nparts)
        .astype(np.int64)
        .tolist()
    )
    _, _, _, vweights = graph.adjacency_lists()
    nbrs, wts = graph.neighbor_slices()
    volume = objective == "volume"
    vgain = _VolumeGainKernel(nbrs) if volume else None
    for _ in range(max_passes):
        improved = False
        for v in rng.permutation(n).tolist():
            frm = assign[v]
            # Connectivity of v to each adjacent part (insertion order
            # = first appearance in the adjacency slice, which fixes
            # the candidate-evaluation order below).
            conn: dict[int, int] = {}
            for u, w in zip(nbrs[v], wts[v]):
                p = assign[u]
                conn[p] = conn.get(p, 0) + w
            if not conn or (len(conn) == 1 and frm in conn):
                continue  # interior (or isolated) vertex
            vw = vweights[v]
            internal = conn.get(frm, 0)
            if volume:
                vgain.prepare(assign, v, frm)
            best_to = -1
            best_gain = 0
            best_conn = -1
            for p, c in conn.items():
                if p == frm:
                    continue
                if pweights[p] + vw > cap:
                    continue
                gain = c - internal if not volume else vgain.gain(p)
                if best_to < 0 or gain > best_gain or (
                    gain == best_gain and c > best_conn
                ):
                    best_to, best_gain, best_conn = p, gain, c
            if best_to < 0:
                continue
            # Accept strictly improving moves; otherwise only moves
            # that drain an over-full part, chosen so a monotone
            # potential (total overflow above the relevant cap)
            # strictly decreases — this is the balance escape hatch
            # and it cannot ping-pong.
            accept = best_gain > 0
            if not accept and pweights[frm] > cap:
                accept = True  # negative gain allowed to fix hard overflow
            if (
                not accept
                and best_gain == 0
                and pweights[frm] > ideal_cap >= pweights[best_to] + vw
            ):
                accept = True
            if accept:
                assign[v] = best_to
                pweights[frm] -= vw
                pweights[best_to] += vw
                improved = True
        if not improved:
            break
    return np.array(assign, dtype=np.int64)
