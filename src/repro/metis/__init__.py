"""From-scratch multilevel graph partitioner (METIS reproduction).

Implements the algorithms of Karypis & Kumar that the paper uses as its
baseline: recursive bisection (RB), multilevel K-way minimizing edgecut
(KWAY), and the total-communication-volume K-way variant (TV).
"""

from .api import METIS_METHODS, part_graph
from .bisection import multilevel_bisection, recursive_bisection
from .coarsen import CoarseLevel, coarsen_to, contract
from .initial import greedy_graph_growing, spectral_initial_bisection
from .kway import multilevel_kway
from .matching import heavy_edge_matching, random_matching
from .refine import balance_constraint, fm_refine_bisection, greedy_kway_refine

__all__ = [
    "CoarseLevel",
    "METIS_METHODS",
    "balance_constraint",
    "coarsen_to",
    "contract",
    "fm_refine_bisection",
    "greedy_graph_growing",
    "greedy_kway_refine",
    "heavy_edge_matching",
    "multilevel_bisection",
    "multilevel_kway",
    "part_graph",
    "random_matching",
    "recursive_bisection",
    "spectral_initial_bisection",
]
