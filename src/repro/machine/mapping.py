"""Rank-to-node mapping strategies.

The P690 is a cluster of SMP nodes, so *which ranks share a node*
changes communication cost.  SFC partitions get good mappings for free
(consecutive ranks own adjacent curve segments, and MPI places
consecutive ranks on the same node), while a graph partitioner's part
numbering carries no such guarantee.  This module makes the mapping an
explicit, swappable step so the effect can be measured:

* :func:`identity_mapping` — ranks as numbered (MPI block placement);
* :func:`random_mapping` — adversarial scrambling (lower bound);
* :func:`greedy_comm_mapping` — pack heavily-communicating parts onto
  nodes greedily from the partition's communication graph, which is
  what a topology-aware scheduler would do for METIS partitions.

A mapping is a permutation ``perm`` with ``perm[part] = rank``; apply
it with :func:`apply_mapping` to get a partition whose part ids *are*
machine ranks.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..partition.base import Partition
from ..partition.metrics import communication_pattern
from .spec import MachineSpec

__all__ = [
    "identity_mapping",
    "random_mapping",
    "greedy_comm_mapping",
    "apply_mapping",
]


def identity_mapping(nparts: int) -> np.ndarray:
    """Part ``p`` runs on rank ``p``."""
    return np.arange(nparts, dtype=np.int64)


def random_mapping(nparts: int, seed: int = 0) -> np.ndarray:
    """Uniformly random placement (for worst-case comparisons)."""
    return np.random.default_rng(seed).permutation(nparts).astype(np.int64)


def greedy_comm_mapping(
    graph: CSRGraph,
    partition: Partition,
    machine: MachineSpec,
) -> np.ndarray:
    """Pack communicating parts onto SMP nodes greedily.

    Builds the part-to-part communication volumes, then fills nodes one
    at a time: seed each node with the unplaced part having the largest
    total volume, then repeatedly add the unplaced part with the most
    traffic to the node's current members.

    Returns:
        Permutation ``perm[part] = rank``.
    """
    nparts = partition.nparts
    comm = communication_pattern(graph, partition)
    volume = np.zeros((nparts, nparts), dtype=np.int64)
    for (a, b), pts in comm.pair_points.items():
        volume[a, b] = pts
    total = volume.sum(axis=1) + volume.sum(axis=0)
    unplaced = set(range(nparts))
    perm = np.empty(nparts, dtype=np.int64)
    rank = 0
    per_node = machine.procs_per_node
    while unplaced:
        seed_part = max(unplaced, key=lambda p: (int(total[p]), -p))
        members = [seed_part]
        unplaced.remove(seed_part)
        while len(members) < per_node and unplaced:
            best = max(
                unplaced,
                key=lambda p: (
                    int(volume[p, members].sum() + volume[members, p].sum()),
                    -p,
                ),
            )
            members.append(best)
            unplaced.remove(best)
        for p in members:
            perm[p] = rank
            rank += 1
    return perm


def apply_mapping(partition: Partition, perm: np.ndarray) -> Partition:
    """Renumber a partition's parts by a placement permutation."""
    perm = np.asarray(perm, dtype=np.int64)
    if len(perm) != partition.nparts:
        raise ValueError("permutation size does not match nparts")
    if sorted(perm.tolist()) != list(range(partition.nparts)):
        raise ValueError("perm must be a permutation of part ids")
    return Partition(
        perm[partition.assignment],
        nparts=partition.nparts,
        method=f"{partition.method}+mapped",
    )
