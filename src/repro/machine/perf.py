"""Discrete performance model: partition + cost model -> time per step.

The quantity the paper plots is the sustained floating-point execution
rate of SEAM under different partitions.  Per timestep, each processor

1. computes the RHS for its local elements (flops / sustained rate) —
   load imbalance shows up here as the *maximum* over processors;
2. exchanges boundary-point partial sums with every neighboring
   processor, once per RK stage, over the network tier (intra- or
   inter-node) connecting the two ranks.

The step time is the maximum over processors of compute + communication
(bulk-synchronous, no overlap — SEAM's halo exchange was blocking in
this era), and speedup / Gflops follow from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..partition.base import Partition
from ..partition.metrics import CommunicationPattern, communication_pattern
from ..seam.cost import DEFAULT_COST_MODEL, SEAMCostModel
from .spec import MachineSpec, P690_CLUSTER

__all__ = ["StepTiming", "PerformanceModel"]


@dataclass(frozen=True)
class StepTiming:
    """Per-timestep timing of one partitioned run.

    Attributes:
        nprocs: Processor count (``partition.nparts``).
        compute_s: ``(nprocs,)`` per-processor compute seconds.
        comm_s: ``(nprocs,)`` per-processor communication seconds.
        step_s: Wall-clock seconds per step (max over processors).
        total_flops: Useful flops per step over all processors.
    """

    nprocs: int
    compute_s: np.ndarray
    comm_s: np.ndarray
    step_s: float
    total_flops: float

    @property
    def sustained_flops(self) -> float:
        """Aggregate sustained flop rate (the paper's Figs. 9-10)."""
        return self.total_flops / self.step_s

    @property
    def compute_fraction(self) -> float:
        """Fraction of the critical path spent computing."""
        worst = int(np.argmax(self.compute_s + self.comm_s))
        return float(self.compute_s[worst] / self.step_s)


class PerformanceModel:
    """Simulates SEAM time-per-step for a partition on a machine.

    Args:
        machine: Cluster description (default: the paper's P690).
        cost: Per-element flop/byte model (default: SEAM defaults).
    """

    def __init__(
        self,
        machine: MachineSpec = P690_CLUSTER,
        cost: SEAMCostModel = DEFAULT_COST_MODEL,
    ):
        self.machine = machine
        self.cost = cost

    def step_timing(
        self,
        graph: CSRGraph,
        partition: Partition,
        comm: CommunicationPattern | None = None,
    ) -> StepTiming:
        """Time one SEAM timestep under a partition.

        Args:
            graph: Element-connectivity graph whose edge weights are
                shared boundary points (:func:`repro.graphs.mesh_graph`).
            partition: Assignment of elements to processors.
            comm: Pre-computed communication pattern (recomputed
                otherwise).

        Returns:
            The :class:`StepTiming`.
        """
        if comm is None:
            comm = communication_pattern(graph, partition)
        nprocs = partition.nparts
        machine = self.machine
        cost = self.cost
        if nprocs > machine.max_procs:
            raise ValueError(
                f"{nprocs} processors exceed the machine's "
                f"{machine.max_procs}-processor job limit"
            )
        nelemd = partition.part_sizes().astype(np.float64)
        compute = (
            nelemd * cost.flops_per_step_per_element() / machine.sustained_flops
        )
        bpp = cost.bytes_per_point()
        exchanges = cost.exchanges_per_step()
        comm_s = np.zeros(nprocs)
        for (src, dst), points in comm.pair_points.items():
            link = machine.link(src, dst)
            comm_s[src] += exchanges * link.message_time(points * bpp)
        step_s = float((compute + comm_s).max())
        total_flops = cost.step_flops(int(nelemd.sum()))
        return StepTiming(
            nprocs=nprocs,
            compute_s=compute,
            comm_s=comm_s,
            step_s=step_s,
            total_flops=total_flops,
        )

    def serial_step_time(self, nelem: int) -> float:
        """Single-processor step time (no communication)."""
        return self.cost.step_flops(nelem) / self.machine.sustained_flops

    def speedup(
        self,
        graph: CSRGraph,
        partition: Partition,
        comm: CommunicationPattern | None = None,
    ) -> float:
        """Speedup of a partitioned run over one processor."""
        timing = self.step_timing(graph, partition, comm)
        return self.serial_step_time(graph.nvertices) / timing.step_s
