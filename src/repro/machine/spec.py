"""Machine description: the NCAR IBM P690 cluster of the paper.

Paper Sec. 4: "The system contains a total of [...] 1.3 GHz Power-4
processors connected by a dual plane Colony network.  The system
contains 92 8-way SMP nodes and nine 32-way SMP nodes.  The system is
configured so that a maximum of 768 processors is available to a
single parallel application."  The single-processor SEAM rate was
measured at 841 Mflop/s, 16% of the Power-4's 5.2 Gflop/s peak.

Network constants are documented era-plausible values for shared-memory
transfers inside a Power-4 SMP and MPI over the Colony (SP Switch2)
interconnect; the reproduction validates curve *shapes*, which are
driven by the intra/inter-node asymmetry rather than the absolute
constants (there is an ablation bench that sweeps them).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkParams", "MachineSpec", "P690_CLUSTER", "FLAT_NETWORK_MACHINE"]


@dataclass(frozen=True)
class NetworkParams:
    """Latency/bandwidth (alpha-beta) parameters of one network tier.

    Attributes:
        latency_s: Per-message startup cost in seconds.
        bandwidth_Bps: Sustained point-to-point bandwidth, bytes/s.
    """

    latency_s: float
    bandwidth_Bps: float

    def message_time(self, nbytes: float) -> float:
        """Time to move one message of ``nbytes``."""
        return self.latency_s + nbytes / self.bandwidth_Bps


@dataclass(frozen=True)
class MachineSpec:
    """A cluster of SMP nodes with a two-tier network.

    Attributes:
        name: Human-readable label.
        procs_per_node: Processors sharing one SMP node.
        max_procs: Largest single-job processor count.
        peak_flops: Per-processor peak, flop/s.
        sustained_flops: Measured per-processor application rate.
        intra_node: Network parameters between ranks on one node.
        inter_node: Network parameters between ranks on different nodes.
    """

    name: str
    procs_per_node: int
    max_procs: int
    peak_flops: float
    sustained_flops: float
    intra_node: NetworkParams
    inter_node: NetworkParams

    def node_of(self, rank: int) -> int:
        """SMP node hosting a rank (block mapping, MPI default)."""
        return rank // self.procs_per_node

    def link(self, rank_a: int, rank_b: int) -> NetworkParams:
        """Network tier connecting two ranks."""
        if self.node_of(rank_a) == self.node_of(rank_b):
            return self.intra_node
        return self.inter_node

    def sustained_fraction(self) -> float:
        """Sustained / peak (the paper quotes 16% for SEAM)."""
        return self.sustained_flops / self.peak_flops


#: The paper's evaluation platform.
P690_CLUSTER = MachineSpec(
    name="NCAR IBM P690 cluster (1.3 GHz Power-4, Colony switch)",
    procs_per_node=8,
    max_procs=768,
    peak_flops=5.2e9,
    sustained_flops=841.0e6,
    intra_node=NetworkParams(latency_s=3.0e-6, bandwidth_Bps=2.0e9),
    inter_node=NetworkParams(latency_s=18.0e-6, bandwidth_Bps=350.0e6),
)

#: Counterfactual machine with a single flat network tier — used by the
#: ablation bench to isolate how much of the SFC advantage comes from
#: rank locality on the SMP nodes.
FLAT_NETWORK_MACHINE = MachineSpec(
    name="flat-network counterfactual",
    procs_per_node=1,
    max_procs=P690_CLUSTER.max_procs,
    peak_flops=P690_CLUSTER.peak_flops,
    sustained_flops=P690_CLUSTER.sustained_flops,
    intra_node=P690_CLUSTER.inter_node,
    inter_node=P690_CLUSTER.inter_node,
)
