"""Machine model: the paper's IBM P690 cluster and the perf simulator."""

from .mapping import (
    apply_mapping,
    greedy_comm_mapping,
    identity_mapping,
    random_mapping,
)
from .perf import PerformanceModel, StepTiming
from .trace import RankSegment, StepTrace, trace_step
from .spec import FLAT_NETWORK_MACHINE, P690_CLUSTER, MachineSpec, NetworkParams

__all__ = [
    "FLAT_NETWORK_MACHINE",
    "MachineSpec",
    "NetworkParams",
    "P690_CLUSTER",
    "PerformanceModel",
    "apply_mapping",
    "greedy_comm_mapping",
    "identity_mapping",
    "random_mapping",
    "RankSegment",
    "StepTiming",
    "StepTrace",
    "trace_step",
]
