"""Per-rank execution timeline of one simulated timestep.

The step time of a bulk-synchronous SEAM step is the *maximum* over
processors of compute + communication; understanding *why* a partition
is slow means seeing which ranks sit on the critical path and whether
they are compute-bound (load imbalance) or waiting on messages
(communication imbalance / slow links).  This module renders that as a
textual Gantt chart from the performance model's per-rank numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..partition.base import Partition
from .perf import PerformanceModel, StepTiming

__all__ = ["RankSegment", "StepTrace", "trace_step"]


@dataclass(frozen=True)
class RankSegment:
    """One rank's timing breakdown.

    Attributes:
        rank: Processor id.
        compute_s: Seconds computing.
        comm_s: Seconds communicating.
        critical: Whether this rank sets the step time.
    """

    rank: int
    compute_s: float
    comm_s: float
    critical: bool

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s


@dataclass(frozen=True)
class StepTrace:
    """Timeline of one step across all ranks."""

    timing: StepTiming
    segments: tuple[RankSegment, ...]

    @property
    def critical_rank(self) -> int:
        return next(s.rank for s in self.segments if s.critical)

    def idle_fraction(self) -> float:
        """Mean fraction of the step each rank spends idle (waiting
        at the implicit barrier for the critical rank)."""
        step = self.timing.step_s
        if step == 0:
            return 0.0
        idle = [1.0 - s.total_s / step for s in self.segments]
        return float(np.mean(idle))

    def render(self, width: int = 60, max_ranks: int = 24) -> str:
        """ASCII Gantt chart: ``#`` compute, ``~`` communication.

        Ranks beyond ``max_ranks`` are elided around the critical rank
        so big runs stay readable.
        """
        step = self.timing.step_s
        segs = list(self.segments)
        if len(segs) > max_ranks:
            crit = self.critical_rank
            # Keep the slowest ranks plus an evenly-spaced sample.
            by_total = sorted(segs, key=lambda s: -s.total_s)[: max_ranks // 2]
            keep = {s.rank for s in by_total} | {crit}
            stride = max(1, len(segs) // (max_ranks - len(keep)))
            keep |= set(range(0, len(segs), stride))
            segs = [s for s in segs if s.rank in keep][:max_ranks]
        lines = [
            f"step = {step * 1e6:.0f} us; '#' compute, '~' comm; "
            f"critical rank = {self.critical_rank}"
        ]
        for s in segs:
            n_comp = int(round(width * s.compute_s / step)) if step else 0
            n_comm = int(round(width * s.comm_s / step)) if step else 0
            bar = "#" * n_comp + "~" * n_comm
            marker = " <== critical" if s.critical else ""
            lines.append(f"rank {s.rank:>4d} |{bar:<{width}s}|{marker}")
        if len(segs) < len(self.segments):
            lines.append(f"({len(self.segments) - len(segs)} ranks elided)")
        return "\n".join(lines)


def trace_step(
    model: PerformanceModel,
    graph: CSRGraph,
    partition: Partition,
) -> StepTrace:
    """Trace one simulated timestep under a partition."""
    timing = model.step_timing(graph, partition)
    totals = timing.compute_s + timing.comm_s
    critical = int(np.argmax(totals))
    segments = tuple(
        RankSegment(
            rank=r,
            compute_s=float(timing.compute_s[r]),
            comm_s=float(timing.comm_s[r]),
            critical=(r == critical),
        )
        for r in range(timing.nprocs)
    )
    return StepTrace(timing=timing, segments=segments)
