"""Dihedral-group transforms used to orient space-filling sub-curves.

Dennis (2003) describes curve refinement in terms of *major* and
*joiner* vectors attached to every sub-domain (after Pilkington &
Baden).  The major vector fixes the orientation of the child curve and
the joiner vector points at the next sub-domain visited.  Both pieces
of information are equivalent to choosing, for each child block, an
element of the dihedral group D4 (the eight symmetries of the square)
that maps the *canonical* child curve into the block:

* the canonical curve of size ``n`` enters at cell ``(0, 0)`` and exits
  at cell ``(n - 1, 0)`` — i.e. its major vector points along ``+x``;
* applying a D4 element rotates/reflects the whole child curve, which
  rotates/reflects its major and joiner vectors with it.

Working with D4 elements instead of raw vectors keeps the recursion
closed under composition (composing two symmetries is a table lookup)
and lets the generator apply a transform to *every* cell of a child
curve with one vectorized NumPy expression.

Coordinates are ``(x, y)`` integer cell indices with the origin at the
bottom-left corner of the (sub-)domain; cells run ``0 .. n-1`` on each
axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Transform",
    "IDENTITY",
    "ROT90",
    "ROT180",
    "ROT270",
    "TRANSPOSE",
    "ANTITRANSPOSE",
    "FLIP_X",
    "FLIP_Y",
    "ALL_TRANSFORMS",
]


@dataclass(frozen=True)
class Transform:
    """An element of D4 acting on an ``n x n`` block of cells.

    The action on a cell ``(x, y)`` of an ``n``-sized block is::

        (x', y') = M @ (x, y) + (n - 1) * t

    where ``M`` is a signed permutation matrix and ``t`` offsets the
    image back into ``[0, n-1]^2`` for the axes that ``M`` negates.
    ``t`` is stored implicitly: a coordinate needs the ``n - 1`` shift
    exactly when its row of ``M`` sums to ``-1``.

    Attributes:
        name: Human-readable label (e.g. ``"rot90"``).
        mxx, mxy, myx, myy: Entries of the 2x2 signed permutation
            matrix ``M`` (each in ``{-1, 0, 1}``).
    """

    name: str
    mxx: int
    mxy: int
    myx: int
    myy: int

    def apply(self, x, y, n: int):
        """Apply the transform to cell coordinates inside an ``n``-block.

        Args:
            x: Cell x-coordinates (scalar or array).
            y: Cell y-coordinates (scalar or array).
            n: Side length of the block being transformed.

        Returns:
            Tuple ``(x', y')`` of transformed coordinates, same shape
            as the inputs, guaranteed to lie in ``[0, n-1]``.
        """
        sx = n - 1 if (self.mxx + self.mxy) < 0 else 0
        sy = n - 1 if (self.myx + self.myy) < 0 else 0
        xp = self.mxx * x + self.mxy * y + sx
        yp = self.myx * x + self.myy * y + sy
        return xp, yp

    def apply_points(self, pts: np.ndarray, n: int) -> np.ndarray:
        """Vectorized :meth:`apply` for an ``(m, 2)`` array of cells."""
        x, y = self.apply(pts[:, 0], pts[:, 1], n)
        return np.stack([x, y], axis=1)

    def compose(self, other: "Transform") -> "Transform":
        """Return the transform equal to ``self`` applied after ``other``.

        ``(self.compose(other)).apply(p) == self.apply(other.apply(p))``
        for every cell ``p`` of any block size.
        """
        # Matrix product of the linear parts; offsets recompute from signs.
        mxx = self.mxx * other.mxx + self.mxy * other.myx
        mxy = self.mxx * other.mxy + self.mxy * other.myy
        myx = self.myx * other.mxx + self.myy * other.myx
        myy = self.myx * other.mxy + self.myy * other.myy
        key = (mxx, mxy, myx, myy)
        return _BY_MATRIX[key]

    def inverse(self) -> "Transform":
        """Return the group inverse."""
        # Inverse of a signed permutation matrix is its transpose.
        key = (self.mxx, self.myx, self.mxy, self.myy)
        return _BY_MATRIX[key]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Transform({self.name})"


IDENTITY = Transform("identity", 1, 0, 0, 1)
ROT90 = Transform("rot90", 0, -1, 1, 0)  # counter-clockwise quarter turn
ROT180 = Transform("rot180", -1, 0, 0, -1)
ROT270 = Transform("rot270", 0, 1, -1, 0)
TRANSPOSE = Transform("transpose", 0, 1, 1, 0)  # mirror across y = x
ANTITRANSPOSE = Transform("antitranspose", 0, -1, -1, 0)  # across y = -x
FLIP_X = Transform("flip_x", -1, 0, 0, 1)  # mirror across vertical axis
FLIP_Y = Transform("flip_y", 1, 0, 0, -1)  # mirror across horizontal axis

ALL_TRANSFORMS: tuple[Transform, ...] = (
    IDENTITY,
    ROT90,
    ROT180,
    ROT270,
    TRANSPOSE,
    ANTITRANSPOSE,
    FLIP_X,
    FLIP_Y,
)

_BY_MATRIX: dict[tuple[int, int, int, int], Transform] = {
    (t.mxx, t.mxy, t.myx, t.myy): t for t in ALL_TRANSFORMS
}
