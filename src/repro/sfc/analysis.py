"""Locality analysis of space-filling curves.

Space-filling curves are useful for partitioning because contiguous
curve segments stay geometrically compact, which keeps the boundary
(and hence the communication volume) of each segment small.  These
diagnostics quantify that property and back the refinement-order
ablation: the paper leaves open *why* the Hilbert-Peano curve's
advantage is smaller, and segment compactness is the natural suspect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generator import SpaceFillingCurve

__all__ = [
    "CurveLocality",
    "segment_bounding_boxes",
    "segment_surface_to_volume",
    "neighbor_stretch",
    "analyze_curve",
]


@dataclass(frozen=True)
class CurveLocality:
    """Summary locality statistics of a curve.

    Attributes:
        schedule: Refinement schedule of the analyzed curve.
        size: Domain side length.
        nsegments: Number of equal segments used for the segment stats.
        mean_bbox_aspect: Mean aspect ratio (long/short side) of the
            bounding boxes of equal curve segments; 1.0 is perfectly
            square, larger is stringier.
        mean_surface_to_volume: Mean ratio of segment boundary length
            (in cell edges shared with other segments or the domain
            hull) to segment area.
        mean_neighbor_stretch: Mean over grid-adjacent cell pairs of
            the absolute curve-index distance between them; smaller
            means grid neighbors stay closer along the curve.
        max_neighbor_stretch: Worst-case index distance between
            grid-adjacent cells.
    """

    schedule: str
    size: int
    nsegments: int
    mean_bbox_aspect: float
    mean_surface_to_volume: float
    mean_neighbor_stretch: float
    max_neighbor_stretch: int


def segment_bounding_boxes(
    curve: SpaceFillingCurve, nsegments: int
) -> np.ndarray:
    """Bounding box of each of ``nsegments`` equal curve segments.

    Returns:
        ``(nsegments, 4)`` int array of ``(xmin, ymin, xmax, ymax)``.
    """
    ncells = len(curve)
    if not 1 <= nsegments <= ncells:
        raise ValueError(f"nsegments must be in [1, {ncells}]")
    bounds = np.linspace(0, ncells, nsegments + 1).astype(np.int64)
    boxes = np.empty((nsegments, 4), dtype=np.int64)
    for s in range(nsegments):
        seg = curve.coords[bounds[s] : bounds[s + 1]]
        boxes[s, 0] = seg[:, 0].min()
        boxes[s, 1] = seg[:, 1].min()
        boxes[s, 2] = seg[:, 0].max()
        boxes[s, 3] = seg[:, 1].max()
    return boxes


def segment_surface_to_volume(
    curve: SpaceFillingCurve, nsegments: int
) -> np.ndarray:
    """Boundary-to-area ratio of each equal curve segment.

    The boundary counts cell edges whose two sides lie in different
    segments (domain-hull edges excluded: they cost no communication on
    a closed cubed-sphere face chain, and excluding them keeps the
    metric comparable across segment counts).
    """
    ncells = len(curve)
    if not 1 <= nsegments <= ncells:
        raise ValueError(f"nsegments must be in [1, {ncells}]")
    bounds = np.linspace(0, ncells, nsegments + 1).astype(np.int64)
    owner = np.empty(ncells, dtype=np.int64)
    for s in range(nsegments):
        owner[bounds[s] : bounds[s + 1]] = s
    n = curve.size
    seg_of_cell = np.empty((n, n), dtype=np.int64)
    seg_of_cell[curve.coords[:, 0], curve.coords[:, 1]] = owner
    areas = np.diff(bounds).astype(np.float64)
    boundary = np.zeros(nsegments, dtype=np.float64)
    # Horizontal-neighbor cuts.
    diff_x = seg_of_cell[:-1, :] != seg_of_cell[1:, :]
    # Vertical-neighbor cuts.
    diff_y = seg_of_cell[:, :-1] != seg_of_cell[:, 1:]
    np.add.at(boundary, seg_of_cell[:-1, :][diff_x], 1.0)
    np.add.at(boundary, seg_of_cell[1:, :][diff_x], 1.0)
    np.add.at(boundary, seg_of_cell[:, :-1][diff_y], 1.0)
    np.add.at(boundary, seg_of_cell[:, 1:][diff_y], 1.0)
    return boundary / areas


def neighbor_stretch(curve: SpaceFillingCurve) -> np.ndarray:
    """Curve-index distance for every grid-adjacent cell pair.

    Returns:
        1-D int array, one entry per undirected grid edge.
    """
    idx = curve.index
    horizontal = np.abs(idx[:-1, :] - idx[1:, :]).ravel()
    vertical = np.abs(idx[:, :-1] - idx[:, 1:]).ravel()
    return np.concatenate([horizontal, vertical])


def analyze_curve(
    curve: SpaceFillingCurve, nsegments: int | None = None
) -> CurveLocality:
    """Compute the full :class:`CurveLocality` summary for a curve.

    Args:
        curve: Curve to analyze.
        nsegments: Segment count for the segment statistics; defaults
            to the curve's side length (square-root partitioning).
    """
    if nsegments is None:
        nsegments = curve.size
    boxes = segment_bounding_boxes(curve, nsegments)
    w = (boxes[:, 2] - boxes[:, 0] + 1).astype(np.float64)
    h = (boxes[:, 3] - boxes[:, 1] + 1).astype(np.float64)
    aspect = np.maximum(w, h) / np.minimum(w, h)
    s2v = segment_surface_to_volume(curve, nsegments)
    stretch = neighbor_stretch(curve)
    return CurveLocality(
        schedule=curve.schedule,
        size=curve.size,
        nsegments=nsegments,
        mean_bbox_aspect=float(aspect.mean()),
        mean_surface_to_volume=float(s2v.mean()),
        mean_neighbor_stretch=float(stretch.mean()) if stretch.size else 0.0,
        max_neighbor_stretch=int(stretch.max()) if stretch.size else 0,
    )
