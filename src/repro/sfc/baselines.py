"""Baseline orderings: boustrophedon scanlines and Morton (Z-order).

The Hilbert/m-Peano curves earn their complexity by being *continuous*
(consecutive cells are grid neighbors) *and* local (segments are
compact).  These two classical orderings each drop one property and
anchor the locality comparison:

* **boustrophedon** (serpentine scanline) — continuous but stringy:
  equal segments are full-width strips with terrible surface-to-volume;
* **Morton / Z-order** — locality comparable to Hilbert but *not*
  continuous (the "Z" jumps), so it cannot be chained across cube faces
  into the paper's single continuous curve, and segment boundaries can
  be split across distant blocks.

Both are returned as :class:`repro.sfc.generator.SpaceFillingCurve`
instances so the analysis and partitioning machinery applies unchanged.
"""

from __future__ import annotations

import numpy as np

from .generator import SpaceFillingCurve

__all__ = ["boustrophedon_curve", "morton_curve", "is_continuous_ordering"]


def boustrophedon_curve(size: int) -> SpaceFillingCurve:
    """Serpentine column scan: up column 0, down column 1, ...

    Continuous for every ``size >= 1`` (unlike the self-similar curves
    it has no size restriction), but each equal segment is a strip.
    """
    if size < 1:
        raise ValueError("size must be positive")
    xs = np.repeat(np.arange(size), size)
    ys = np.tile(np.arange(size), size)
    # Reverse y on odd columns.
    odd = xs % 2 == 1
    ys = np.where(odd, size - 1 - ys, ys)
    coords = np.stack([xs, ys], axis=1).astype(np.int64)
    index = np.empty((size, size), dtype=np.int64)
    index[coords[:, 0], coords[:, 1]] = np.arange(size * size)
    return SpaceFillingCurve(
        schedule=f"boustrophedon:{size}", size=size, coords=coords, index=index
    )


def morton_curve(level: int) -> SpaceFillingCurve:
    """Morton (Z-order) curve of side ``2**level``.

    Interleaves the bits of x and y.  NOT continuous: consecutive curve
    positions may be far apart (tested), which is exactly why the paper
    needs Hilbert rather than the cheaper Morton order.
    """
    if level < 0:
        raise ValueError("level must be non-negative")
    n = 2**level
    k = np.arange(n * n, dtype=np.int64)
    x = np.zeros_like(k)
    y = np.zeros_like(k)
    for bit in range(level):
        y |= ((k >> (2 * bit)) & 1) << bit
        x |= ((k >> (2 * bit + 1)) & 1) << bit
    coords = np.stack([x, y], axis=1)
    index = np.empty((n, n), dtype=np.int64)
    index[coords[:, 0], coords[:, 1]] = k
    return SpaceFillingCurve(
        schedule=f"morton:{level}", size=n, coords=coords, index=index
    )


def is_continuous_ordering(curve: SpaceFillingCurve) -> bool:
    """Whether consecutive cells are always grid neighbors."""
    if len(curve) < 2:
        return True
    return bool((curve.step_lengths() == 1).all())
