"""Space-filling curves: Hilbert, meandering Peano, and Hilbert-Peano.

This package implements Section 3 of Dennis (2003): the recursive
major/joiner-vector construction of the Hilbert and meandering Peano
curves, and the paper's new nested Hilbert-Peano curve covering domains
of side ``2^n * 3^m``.
"""

from .baselines import (
    boustrophedon_curve,
    is_continuous_ordering,
    morton_curve,
)
from .analysis import (
    CurveLocality,
    analyze_curve,
    neighbor_stretch,
    segment_bounding_boxes,
    segment_surface_to_volume,
)
from .curves import HILBERT, MEANDER_PEANO, TEMPLATES, CurveTemplate, template_for_radix
from .factorization import (
    admissible_sizes,
    all_schedules,
    default_schedule,
    factorize_2_3,
    is_admissible_size,
    schedule_size,
)
from .generator import (
    SpaceFillingCurve,
    generate_curve,
    hilbert_curve,
    hilbert_peano_curve,
    peano_curve,
)
from .keys import (
    KEY_DTYPE,
    KeyTables,
    curve_keys,
    morton_keys,
    schedule_tables,
)
from .transforms import ALL_TRANSFORMS, IDENTITY, Transform

__all__ = [
    "ALL_TRANSFORMS",
    "CurveLocality",
    "CurveTemplate",
    "HILBERT",
    "IDENTITY",
    "KEY_DTYPE",
    "KeyTables",
    "MEANDER_PEANO",
    "SpaceFillingCurve",
    "TEMPLATES",
    "Transform",
    "admissible_sizes",
    "all_schedules",
    "analyze_curve",
    "boustrophedon_curve",
    "curve_keys",
    "default_schedule",
    "factorize_2_3",
    "generate_curve",
    "hilbert_curve",
    "hilbert_peano_curve",
    "is_admissible_size",
    "is_continuous_ordering",
    "morton_curve",
    "morton_keys",
    "neighbor_stretch",
    "peano_curve",
    "schedule_size",
    "schedule_tables",
    "segment_bounding_boxes",
    "segment_surface_to_volume",
    "template_for_radix",
]
