"""Base curve templates: Hilbert (radix 2) and meandering Peano (radix 3).

A *template* describes one refinement step of a space-filling curve in
canonical orientation.  The canonical contract, shared by every
template (this is the paper's observation that makes Hilbert and
m-Peano nestable into the new Hilbert-Peano curve), is:

* the curve enters its domain at the bottom-left cell ``(0, 0)``;
* the curve exits at the bottom-right cell ``(n - 1, 0)``;
* equivalently, the *major vector* points along ``+x``.

One refinement step of radix ``r`` splits the domain into ``r x r``
child blocks, visits the blocks in a fixed order, and traverses each
block with a D4-transformed copy of the (recursively refined) canonical
curve.  Continuity requires the exit cell of each child to be a unit
grid step away from the entry cell of the next child; the module
validates that at import time for every registered template so a typo
in a transform table cannot silently corrupt every downstream result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .transforms import (
    ANTITRANSPOSE,
    IDENTITY,
    ROT180,
    TRANSPOSE,
    Transform,
)

__all__ = [
    "CurveTemplate",
    "HILBERT",
    "MEANDER_PEANO",
    "TEMPLATES",
    "template_for_radix",
]


@dataclass(frozen=True)
class CurveTemplate:
    """One refinement step of a self-similar space-filling curve.

    Attributes:
        name: Curve family name (``"hilbert"`` or ``"m-peano"``).
        radix: Refinement factor ``r``; the step subdivides a domain
            into ``r x r`` child blocks.
        blocks: Child block coordinates ``(bx, by)`` in visit order.
        transforms: D4 element applied to the canonical child curve in
            each block, aligned with :attr:`blocks`.
        code: Single-letter code used in refinement schedules
            (``"H"`` / ``"P"``).
    """

    name: str
    radix: int
    blocks: tuple[tuple[int, int], ...]
    transforms: tuple[Transform, ...]
    code: str = field(default="?")

    def __post_init__(self) -> None:
        r = self.radix
        if len(self.blocks) != r * r or len(self.transforms) != r * r:
            raise ValueError(
                f"{self.name}: need {r * r} blocks/transforms, got "
                f"{len(self.blocks)}/{len(self.transforms)}"
            )
        if sorted(self.blocks) != sorted(
            (bx, by) for bx in range(r) for by in range(r)
        ):
            raise ValueError(f"{self.name}: blocks must tile the {r}x{r} grid")
        self._validate_continuity()

    def _validate_continuity(self) -> None:
        """Check entry/exit adjacency for a child size of 1 and 2.

        Validating at two child sizes is sufficient: entry/exit cells
        are affine in the child size ``s``, so adjacency at ``s = 1``
        and ``s = 2`` implies adjacency for all ``s >= 1``.
        """
        for s in (1, 2):
            entry_exit = []
            for (bx, by), tr in zip(self.blocks, self.transforms):
                ex, ey = tr.apply(0, 0, s)  # canonical entry
                qx, qy = tr.apply(s - 1, 0, s)  # canonical exit
                entry_exit.append(
                    ((bx * s + ex, by * s + ey), (bx * s + qx, by * s + qy))
                )
            n = self.radix * s
            first_entry = entry_exit[0][0]
            last_exit = entry_exit[-1][1]
            if first_entry != (0, 0):
                raise ValueError(
                    f"{self.name}: curve must enter at (0,0), enters at "
                    f"{first_entry} (child size {s})"
                )
            if last_exit != (n - 1, 0):
                raise ValueError(
                    f"{self.name}: curve must exit at ({n - 1},0), exits at "
                    f"{last_exit} (child size {s})"
                )
            for k in range(len(entry_exit) - 1):
                (_, (qx, qy)) = entry_exit[k]
                ((ex, ey), _) = entry_exit[k + 1]
                if abs(qx - ex) + abs(qy - ey) != 1:
                    raise ValueError(
                        f"{self.name}: child {k} exit {(qx, qy)} not "
                        f"adjacent to child {k + 1} entry {(ex, ey)} "
                        f"(child size {s})"
                    )


#: Hilbert refinement (paper Figs. 2-3).  The level-1 curve is the
#: U shape (0,0) -> (0,1) -> (1,1) -> (1,0); the first and last child
#: curves are reflected so their major vectors turn the corner, exactly
#: the parent/child vector relation of the paper's Figure 2b.
HILBERT = CurveTemplate(
    name="hilbert",
    radix=2,
    blocks=((0, 0), (0, 1), (1, 1), (1, 0)),
    transforms=(TRANSPOSE, IDENTITY, IDENTITY, ANTITRANSPOSE),
    code="H",
)

#: Meandering Peano refinement (paper Fig. 4).  Unlike the classical
#: boustrophedon Peano curve (which crosses the domain corner-to-
#: opposite-corner), the meandering variant enters and exits on the
#: same side, giving it the single-axis major vector required for
#: nesting with Hilbert steps.
MEANDER_PEANO = CurveTemplate(
    name="m-peano",
    radix=3,
    blocks=(
        (0, 0),
        (0, 1),
        (0, 2),
        (1, 2),
        (2, 2),
        (2, 1),
        (1, 1),
        (1, 0),
        (2, 0),
    ),
    transforms=(
        TRANSPOSE,
        TRANSPOSE,
        IDENTITY,
        IDENTITY,
        IDENTITY,
        ROT180,
        ANTITRANSPOSE,
        ANTITRANSPOSE,
        IDENTITY,
    ),
    code="P",
)

#: Registry keyed by both the schedule code and the family name.
TEMPLATES: dict[str, CurveTemplate] = {
    "H": HILBERT,
    "P": MEANDER_PEANO,
    "hilbert": HILBERT,
    "m-peano": MEANDER_PEANO,
    "peano": MEANDER_PEANO,
}


def template_for_radix(radix: int) -> CurveTemplate:
    """Return the base template with the given refinement factor.

    Args:
        radix: 2 for Hilbert, 3 for meandering Peano.

    Raises:
        KeyError: If no template exists for ``radix``.
    """
    for tpl in (HILBERT, MEANDER_PEANO):
        if tpl.radix == radix:
            return tpl
    raise KeyError(f"no curve template with radix {radix}")
