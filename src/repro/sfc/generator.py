"""Vectorized generation of Hilbert, m-Peano and Hilbert-Peano curves.

The generator expands a refinement schedule (see
:mod:`repro.sfc.factorization`) into the full visit order of an
``n x n`` domain.  Rather than the per-cell recursion of the paper's
Fortran pseudo-code (Fig. 3), the same recursion is evaluated *one
level at a time over whole arrays*: if ``sub`` is the ``(s*s, 2)``
array of the already-generated child curve, one refinement step of
radix ``r`` produces the ``(r*r*s*s, 2)`` parent curve by applying each
child-block D4 transform to ``sub`` with a single vectorized signed
permutation and adding the block offset.  This is mathematically
identical to the recursive definition but runs at NumPy speed
(~10^7 cells/s) instead of Python call speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..telemetry import span
from .curves import TEMPLATES, CurveTemplate
from .factorization import default_schedule, schedule_size

__all__ = [
    "SpaceFillingCurve",
    "generate_curve",
    "hilbert_curve",
    "peano_curve",
    "hilbert_peano_curve",
]


@dataclass(frozen=True)
class SpaceFillingCurve:
    """A generated space-filling curve over an ``n x n`` cell grid.

    Attributes:
        schedule: Refinement schedule that produced the curve, coarsest
            level first (e.g. ``"PHH"`` for a 12x12 Hilbert-Peano).
        size: Side length ``n`` of the domain.
        coords: ``(n*n, 2)`` int array; ``coords[k]`` is the ``(x, y)``
            cell visited at curve position ``k``.
        index: ``(n, n)`` int array; ``index[x, y]`` is the curve
            position of cell ``(x, y)`` (inverse of :attr:`coords`).
    """

    schedule: str
    size: int
    coords: np.ndarray
    index: np.ndarray

    def __post_init__(self) -> None:
        self.coords.setflags(write=False)
        self.index.setflags(write=False)

    def __len__(self) -> int:
        return self.size * self.size

    def position_of(self, x: int, y: int) -> int:
        """Curve position of cell ``(x, y)``."""
        return int(self.index[x, y])

    def cell_at(self, k: int) -> tuple[int, int]:
        """Cell visited at curve position ``k``."""
        x, y = self.coords[k]
        return int(x), int(y)

    @property
    def entry(self) -> tuple[int, int]:
        """First cell on the curve (canonical: ``(0, 0)``)."""
        return self.cell_at(0)

    @property
    def exit(self) -> tuple[int, int]:
        """Last cell on the curve (canonical: ``(n - 1, 0)``)."""
        return self.cell_at(len(self) - 1)

    def step_lengths(self) -> np.ndarray:
        """Manhattan distance between consecutive cells (all 1 for a
        valid curve — exposed for tests and locality analysis)."""
        d = np.abs(np.diff(self.coords.astype(np.int64), axis=0))
        return d.sum(axis=1)

    def render(self) -> str:
        """ASCII rendering of visit order, origin at bottom-left."""
        n = self.size
        width = len(str(n * n - 1))
        rows = []
        for y in range(n - 1, -1, -1):
            rows.append(
                " ".join(f"{int(self.index[x, y]):>{width}d}" for x in range(n))
            )
        return "\n".join(rows)


def _expand(schedule: str) -> np.ndarray:
    """Expand a schedule into the ``(n*n, 2)`` visit-order array.

    The schedule is consumed from the *finest* level outwards: start
    with the single-cell curve and repeatedly wrap it in one
    refinement step, ending with the coarsest (first) entry.  The final
    buffer is allocated once up front and every refinement step expands
    the child curve in place — child block 0 always sits at the start
    of the buffer, so blocks are written back-to-front and block 0 is
    transformed last, when the other blocks no longer read from it.
    int32 coordinates halve the curve's memory whenever positions fit.
    """
    n = schedule_size(schedule)
    dtype = np.int32 if n * n < 2**31 else np.int64
    coords = np.empty((n * n, 2), dtype=dtype)
    coords[0] = 0
    size = 1
    count = 1
    for code in reversed(schedule):
        tpl: CurveTemplate = TEMPLATES[code]
        r = tpl.radix
        sub = coords[:count]
        for i in range(r * r - 1, -1, -1):
            bx, by = tpl.blocks[i]
            tr = tpl.transforms[i]
            x, y = tr.apply(sub[:, 0], sub[:, 1], size)
            dst = coords[i * count : (i + 1) * count]
            dst[:, 0] = x + bx * size
            dst[:, 1] = y + by * size
        size *= r
        count *= r * r
    return coords


@lru_cache(maxsize=64)
def _generate_cached(schedule: str) -> SpaceFillingCurve:
    for code in schedule:
        if code not in ("H", "P"):
            raise ValueError(f"unknown refinement code {code!r}")
    n = schedule_size(schedule)
    # Only cold builds reach this span (the lru_cache answers repeats).
    with span("generate_curve", "sfc", schedule=schedule, size=n):
        coords = _expand(schedule)
        dtype = coords.dtype
        index = np.empty((n, n), dtype=dtype)
        index[coords[:, 0], coords[:, 1]] = np.arange(n * n, dtype=dtype)
        return SpaceFillingCurve(
            schedule=schedule, size=n, coords=coords, index=index
        )


def generate_curve(
    size: int | None = None, *, schedule: str | None = None
) -> SpaceFillingCurve:
    """Generate a space-filling curve.

    Exactly one of ``size`` and ``schedule`` selects the curve: a size
    is expanded with the paper's default Peano-first schedule; an
    explicit schedule string (coarsest level first) gives full control
    over nesting order for the refinement-order ablation.

    Args:
        size: Domain side length, must be of the form ``2^n * 3^m``.
        schedule: Refinement schedule over ``{"H", "P"}``.

    Returns:
        The generated :class:`SpaceFillingCurve`.

    Raises:
        ValueError: On inadmissible sizes, unknown schedule codes, or
            if both/neither selector is given.
    """
    if (size is None) == (schedule is None):
        raise ValueError("pass exactly one of `size` or `schedule`")
    if schedule is None:
        assert size is not None
        schedule = default_schedule(size)
    return _generate_cached(schedule)


def hilbert_curve(level: int) -> SpaceFillingCurve:
    """Hilbert curve of the given recursion level (size ``2**level``)."""
    if level < 0:
        raise ValueError("level must be non-negative")
    return generate_curve(schedule="H" * level)


def peano_curve(level: int) -> SpaceFillingCurve:
    """Meandering Peano curve of the given level (size ``3**level``)."""
    if level < 0:
        raise ValueError("level must be non-negative")
    return generate_curve(schedule="P" * level)


def hilbert_peano_curve(hilbert_level: int, peano_level: int) -> SpaceFillingCurve:
    """Nested Hilbert-Peano curve of size ``2**n * 3**m``.

    Follows the paper's construction order: the m-Peano refinements are
    applied first (coarsest), then the Hilbert refinements (Fig. 5).
    """
    if hilbert_level < 0 or peano_level < 0:
        raise ValueError("levels must be non-negative")
    return generate_curve(schedule="P" * peano_level + "H" * hilbert_level)
