"""Bitwise uint64 SFC keying: coordinates → curve positions, no curve.

:func:`repro.sfc.generator.generate_curve` materializes the full visit
order — an ``(n*n, 2)`` coordinate array plus an ``(n, n)`` inverse —
before anything can be partitioned.  That is fine at the paper's sizes
(K ≤ 1944) but becomes the memory- and time-bound step long before the
tens-of-millions-element meshes the partition service targets.  This
module computes each cell's curve position *directly from its
coordinates*, the way Cubism's bit-twiddling Hilbert transpose and
Cornerstone's ``sfcKey()`` encoding do (and Borrell et al.'s parallel
SFC partitioner assumes): a vectorized per-level decode of the
refinement schedule using integer table lookups, O(levels) passes over
the coordinate arrays and O(1) memory beyond them.

The decode inverts the generator's recursion one level at a time.  At a
level of radix ``r`` with child block size ``s``, the block coordinates
``(x // s, y // s)`` identify which child the cell lies in; the child's
visit rank contributes ``rank * s*s`` to the key; and the child's
inverse D4 transform maps the cell into the child's canonical frame for
the next level.  Composing the per-level inverse transforms on the fly
is exactly the transform composition the generator performs — run
backwards — so the resulting key is *bit-identical* to the curve
position (golden-tested at every admissible size).

Three implementations share the packed level tables:

* a C kernel (``sfc_keys`` in ``_kernels.c``, loaded via
  :mod:`repro._native`, disabled by ``REPRO_NO_CKERNELS=1``);
* a generic vectorized NumPy decode (any Hilbert/m-Peano/Hilbert-Peano
  schedule, ~10 array passes per level);
* the classic branch-free Hilbert transpose (pure power-of-two sizes
  only — every level is radix 2, so the rank table degenerates to
  ``(3*rx) ^ ry`` and the inverse transforms to a masked swap).

All three return identical uint64 keys.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .._native import LIB, as_i64p
from .curves import TEMPLATES, CurveTemplate
from .factorization import default_schedule, schedule_size

__all__ = [
    "KEY_DTYPE",
    "KeyTables",
    "curve_keys",
    "morton_keys",
    "schedule_tables",
]

#: Dtype of every key array this module produces.
KEY_DTYPE = np.dtype(np.uint64)

_U64P = ctypes.POINTER(ctypes.c_uint64)

# Packed level-table layout, shared with the C kernel (see the
# ``sfc_keys`` comment in ``_kernels.c``).  One row of ``_STRIDE``
# int64 slots per refinement level, coarsest first:
#
#   [_OFF_R]      radix r of this level (2 or 3)
#   [_OFF_S]      child block size s = n / (product of radices so far)
#   [_OFF_SHIFT]  log2(s) when s is a power of two, else -1 (the C
#                 kernel divides by shifting whenever it can)
#   [_OFF_RANK  + bx*3 + by]  visit rank of child block (bx, by)
#   [_OFF_MXX.._OFF_MYY + i]  inverse-transform matrix of child i
#   [_OFF_XNEG/_OFF_YNEG + i] 1 when the row of the inverse matrix
#                 sums negative (the ``s - 1`` offset applies)
#
# Block coordinates are indexed with a fixed stride of 3 (the maximum
# radix) so the layout is radix-independent.
_OFF_R = 0
_OFF_S = 1
_OFF_SHIFT = 2
_OFF_RANK = 3
_OFF_MXX = 12
_OFF_MXY = 21
_OFF_MYX = 30
_OFF_MYY = 39
_OFF_XNEG = 48
_OFF_YNEG = 57
_STRIDE = 66


@dataclass(frozen=True)
class KeyTables:
    """Packed per-level decode tables for one refinement schedule.

    Attributes:
        schedule: The refinement schedule (coarsest level first).
        size: Domain side length ``n = schedule_size(schedule)``.
        tables: ``(nlevels, _STRIDE)`` int64 array in the layout above.
        pure_hilbert: Every level is radix 2 (enables the branch-free
            bitwise transpose fast path).
    """

    schedule: str
    size: int
    tables: np.ndarray
    pure_hilbert: bool

    def __post_init__(self) -> None:
        self.tables.setflags(write=False)

    @property
    def nlevels(self) -> int:
        return self.tables.shape[0]


@lru_cache(maxsize=128)
def schedule_tables(schedule: str) -> KeyTables:
    """Build (and cache) the packed decode tables for a schedule."""
    for code in schedule:
        if code not in ("H", "P"):
            raise ValueError(f"unknown refinement code {code!r}")
    n = schedule_size(schedule)
    tables = np.zeros((len(schedule), _STRIDE), dtype=np.int64)
    s = n
    for lvl, code in enumerate(schedule):
        tpl: CurveTemplate = TEMPLATES[code]
        r = tpl.radix
        s //= r
        row = tables[lvl]
        row[_OFF_R] = r
        row[_OFF_S] = s
        row[_OFF_SHIFT] = s.bit_length() - 1 if s & (s - 1) == 0 else -1
        for i, (bx, by) in enumerate(tpl.blocks):
            row[_OFF_RANK + bx * 3 + by] = i
        for i, tr in enumerate(tpl.transforms):
            inv = tr.inverse()
            row[_OFF_MXX + i] = inv.mxx
            row[_OFF_MXY + i] = inv.mxy
            row[_OFF_MYX + i] = inv.myx
            row[_OFF_MYY + i] = inv.myy
            row[_OFF_XNEG + i] = 1 if inv.mxx + inv.mxy < 0 else 0
            row[_OFF_YNEG + i] = 1 if inv.myx + inv.myy < 0 else 0
    return KeyTables(
        schedule=schedule,
        size=n,
        tables=np.ascontiguousarray(tables),
        pure_hilbert=all(code == "H" for code in schedule),
    )


def _keys_c(x: np.ndarray, y: np.ndarray, kt: KeyTables) -> np.ndarray | None:
    """C-kernel decode; ``None`` when the library is unavailable."""
    if LIB is None or not hasattr(LIB, "sfc_keys"):
        return None
    keys = np.empty(x.shape[0], dtype=KEY_DTYPE)
    LIB.sfc_keys(
        x.shape[0],
        kt.nlevels,
        as_i64p(kt.tables),
        kt.size,
        as_i64p(x),
        as_i64p(y),
        keys.ctypes.data_as(_U64P),
    )
    return keys


def _face_keys_c(
    gids: np.ndarray,
    ne: int,
    kt: KeyTables,
    rank: np.ndarray,
    coef: np.ndarray,
) -> np.ndarray | None:
    """Fused gid → global-key C decode (cubed-sphere face chaining).

    One register-resident pass: gid → face + face-local cell →
    chain-oriented coordinates → per-level decode → chain offset.
    ``None`` when the library is unavailable; the caller falls back to
    the vectorized NumPy pipeline.
    """
    if LIB is None or not hasattr(LIB, "sfc_face_keys"):
        return None
    keys = np.empty(gids.shape[0], dtype=KEY_DTYPE)
    LIB.sfc_face_keys(
        gids.shape[0],
        kt.nlevels,
        as_i64p(kt.tables),
        ne,
        as_i64p(rank),
        as_i64p(coef),
        as_i64p(gids),
        keys.ctypes.data_as(_U64P),
    )
    return keys


def _keys_numpy(x: np.ndarray, y: np.ndarray, kt: KeyTables) -> np.ndarray:
    """Generic vectorized decode: any mixed Hilbert/Peano schedule."""
    u = x.copy()
    v = y.copy()
    keys = np.zeros(u.shape, dtype=KEY_DTYPE)
    for row in kt.tables:
        r = int(row[_OFF_R])
        s = int(row[_OFF_S])
        bx = u // s
        by = v // s
        i = row[_OFF_RANK + bx * 3 + by]
        keys = keys * np.uint64(r * r) + i.astype(KEY_DTYPE)
        u -= bx * s
        v -= by * s
        un = row[_OFF_MXX + i] * u + row[_OFF_MXY + i] * v + row[_OFF_XNEG + i] * (s - 1)
        v = row[_OFF_MYX + i] * u + row[_OFF_MYY + i] * v + row[_OFF_YNEG + i] * (s - 1)
        u = un
    return keys


def _keys_hilbert(x: np.ndarray, y: np.ndarray, n: int) -> np.ndarray:
    """Classic branch-free Hilbert transpose (pure power-of-two sizes).

    The per-level tables of a pure-``H`` schedule collapse to bit
    operations: the child rank is ``(3*rx) ^ ry`` and the inverse
    transforms are "swap axes, complementing both when ``rx=1, ry=0``"
    — the vectorized form of Cubism's ``AxestoTranspose``.
    """
    u = x.copy()
    v = y.copy()
    keys = np.zeros(u.shape, dtype=KEY_DTYPE)
    s = n >> 1
    while s > 0:
        rx = ((u & s) != 0).astype(KEY_DTYPE)
        ry = ((v & s) != 0).astype(KEY_DTYPE)
        keys += np.uint64(s * s) * ((np.uint64(3) * rx) ^ ry)
        m = s - 1
        u &= m
        v &= m
        swap = ry == 0
        flip = swap & (rx == 1)
        fu = np.where(flip, m - u, u)
        fv = np.where(flip, m - v, v)
        u, v = np.where(swap, fv, fu), np.where(swap, fu, fv)
        s >>= 1
    return keys


def _as_coord_array(a, n: int, name: str, check: bool) -> np.ndarray:
    arr = np.ascontiguousarray(a, dtype=np.int64).ravel()
    if check and arr.size and not (0 <= arr.min() and arr.max() < n):
        raise ValueError(f"{name} coordinates must lie in [0, {n})")
    return arr


def curve_keys(
    x,
    y,
    *,
    size: int | None = None,
    schedule: str | None = None,
    check: bool = True,
) -> np.ndarray:
    """Curve positions of cells ``(x, y)``, straight from coordinates.

    Bit-identical in visit order to
    ``generate_curve(...).index[x, y]`` but never materializes the
    curve: O(levels) vectorized passes over the coordinate arrays.

    Args:
        x: Cell x-coordinates (any shape; int-like).
        y: Cell y-coordinates (same shape as ``x``).
        size: Domain side length (expanded with the paper's default
            Peano-first schedule); exactly one of ``size``/``schedule``.
        schedule: Explicit refinement schedule (coarsest first).
        check: Validate coordinate bounds (two cheap passes).

    Returns:
        uint64 key array of the same shape as ``x``; ``keys[k]`` is the
        curve position of cell ``(x[k], y[k])`` in ``[0, n*n)``.
    """
    if (size is None) == (schedule is None):
        raise ValueError("pass exactly one of `size` or `schedule`")
    if schedule is None:
        assert size is not None
        schedule = default_schedule(size)
    kt = schedule_tables(schedule)
    shape = np.shape(x)
    if np.shape(y) != shape:
        raise ValueError("x and y must have the same shape")
    xs = _as_coord_array(x, kt.size, "x", check)
    ys = _as_coord_array(y, kt.size, "y", check)
    keys = _keys_c(xs, ys, kt)
    if keys is None:
        if kt.pure_hilbert:
            keys = _keys_hilbert(xs, ys, kt.size)
        else:
            keys = _keys_numpy(xs, ys, kt)
    return keys.reshape(shape)


def morton_keys(x, y, size: int, *, check: bool = True) -> np.ndarray:
    """Morton (Z-order) keys: interleave the bits of ``y`` (even bit
    positions) and ``x`` (odd), matching
    :func:`repro.sfc.baselines.morton_curve`'s visit order.

    Z-order is cheaper than Hilbert but *discontinuous* — consecutive
    keys may be far apart, so Morton cannot chain the six cube faces
    into one continuous curve (see the curve-baselines ablation).

    Args:
        x: Cell x-coordinates (any shape; int-like).
        y: Cell y-coordinates (same shape).
        size: Domain side length; must be a power of two.
        check: Validate coordinate bounds.

    Returns:
        uint64 key array, same shape as ``x``.
    """
    if size < 1 or size & (size - 1):
        raise ValueError(f"morton keys need a power-of-two size, got {size}")
    shape = np.shape(x)
    if np.shape(y) != shape:
        raise ValueError("x and y must have the same shape")
    xs = _as_coord_array(x, size, "x", check).astype(KEY_DTYPE)
    ys = _as_coord_array(y, size, "y", check).astype(KEY_DTYPE)
    keys = np.zeros(xs.shape, dtype=KEY_DTYPE)
    one = np.uint64(1)
    for bit in range(size.bit_length() - 1):
        b = np.uint64(bit)
        keys |= ((ys >> b) & one) << np.uint64(2 * bit)
        keys |= ((xs >> b) & one) << np.uint64(2 * bit + 1)
    return keys.reshape(shape)
