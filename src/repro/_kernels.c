/* Hot-path kernels for the METIS-style partitioner.
 *
 * Compiled on demand by repro._native with the system C compiler and
 * loaded through ctypes; every routine is an exact int64 re-statement
 * of the pure-Python kernels in repro.metis.refine / repro.metis.initial
 * (which remain the reference implementation and the fallback).
 *
 * Bit-identity contract: the Python kernels drain a lazy max-priority
 * queue whose keys (-gain, insertion counter) are unique, so the pop
 * order is exactly "highest gain first, FIFO within a gain value".
 * The linked-list bucket queues below reproduce that order verbatim;
 * all arithmetic is int64, matching Python's exact integers on every
 * value these algorithms can produce.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* FM bisection refinement                                             */
/* ------------------------------------------------------------------ */

/* Runs the full pass loop of fm_refine_bisection (after the caller has
 * handled rebalancing and the edgeless early exit).  `side` is updated
 * in place.  Returns 0 on success, -1 on allocation failure (caller
 * falls back to Python).
 */
int64_t fm_refine(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *eweights,
    const int64_t *vweights,
    int64_t *side,
    int64_t cap0, int64_t cap1,
    int64_t pcap0, int64_t pcap1,
    int64_t max_passes,
    int64_t bound,
    int64_t w0, int64_t w1)
{
    int64_t m2 = indptr[n];
    int64_t nbuckets = 2 * bound + 1;
    int64_t cap_entries = n + m2 + 1;
    int64_t locked_mark = bound + 1;
    int64_t *gain = malloc((size_t)n * sizeof(int64_t));
    int64_t *head = malloc((size_t)nbuckets * sizeof(int64_t));
    int64_t *tail = malloc((size_t)nbuckets * sizeof(int64_t));
    int64_t *ev = malloc((size_t)cap_entries * sizeof(int64_t));
    int64_t *enext = malloc((size_t)cap_entries * sizeof(int64_t));
    int64_t *moves = malloc((size_t)n * sizeof(int64_t));
    if (!gain || !head || !tail || !ev || !enext || !moves) {
        free(gain); free(head); free(tail); free(ev); free(enext); free(moves);
        return -1;
    }

    for (int64_t pass = 0; pass < max_passes; pass++) {
        /* Seed gains and the bucket queue (ascending vertex order =
         * the FIFO insertion order of the Python seeding). */
        memset(head, 0xff, (size_t)nbuckets * sizeof(int64_t));
        int64_t nentries = 0;
        int64_t pending = 0;
        int64_t maxg = -bound;
        for (int64_t v = 0; v < n; v++) {
            int64_t sv = side[v];
            int64_t g = 0;
            for (int64_t i = indptr[v]; i < indptr[v + 1]; i++)
                g += (side[indices[i]] != sv) ? eweights[i] : -eweights[i];
            gain[v] = g;
            int64_t gi = g + bound;
            int64_t e = nentries++;
            ev[e] = v;
            enext[e] = -1;
            if (head[gi] < 0) head[gi] = e; else enext[tail[gi]] = e;
            tail[gi] = e;
            if (g > maxg) maxg = g;
            pending++;
        }

        int64_t nmoves = 0, cum = 0, best_cum = 0, best_len = 0;
        while (pending) {
            while (head[maxg + bound] < 0) maxg--;
            int64_t e = head[maxg + bound];
            head[maxg + bound] = enext[e];
            pending--;
            int64_t v = ev[e];
            if (gain[v] != maxg) continue; /* stale entry */
            int64_t frm = side[v];
            int64_t vw = vweights[v];
            if (frm == 0) {
                if (w1 + vw > pcap1) continue;
                w0 -= vw; w1 += vw;
            } else {
                if (w0 + vw > pcap0) continue;
                w1 -= vw; w0 += vw;
            }
            gain[v] = locked_mark;
            side[v] = 1 - frm;
            cum += maxg;
            moves[nmoves++] = v;
            if (cum > best_cum && w0 <= cap0 && w1 <= cap1) {
                best_cum = cum;
                best_len = nmoves;
            }
            for (int64_t i = indptr[v]; i < indptr[v + 1]; i++) {
                int64_t u = indices[i];
                int64_t g = gain[u];
                if (g > bound) continue; /* locked */
                int64_t w = eweights[i];
                /* Edge u-v flips between internal and external. */
                g += (side[u] == frm) ? 2 * w : -2 * w;
                gain[u] = g;
                int64_t gi = g + bound;
                int64_t e2 = nentries++;
                ev[e2] = u;
                enext[e2] = -1;
                if (head[gi] < 0) head[gi] = e2; else enext[tail[gi]] = e2;
                tail[gi] = e2;
                if (g > maxg) maxg = g;
                pending++;
            }
        }
        /* Roll back past the best feasible prefix. */
        for (int64_t i = nmoves - 1; i >= best_len; i--) {
            int64_t v = moves[i];
            int64_t to = 1 - side[v];
            int64_t vw = vweights[v];
            side[v] = to;
            if (to == 0) { w1 -= vw; w0 += vw; } else { w0 -= vw; w1 += vw; }
        }
        if (best_cum <= 0) break;
    }

    free(gain); free(head); free(tail); free(ev); free(enext); free(moves);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Heavy-edge matching claim loop                                      */
/* ------------------------------------------------------------------ */

/* Sequential HEM claims in the given visit order: each unmatched
 * vertex claims its heaviest unmatched neighbor (first in adjacency
 * order on ties).  Returns 0 on success, -1 on allocation failure.
 */
int64_t hem_claim(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *eweights,
    const int64_t *order,
    int64_t *match)
{
    uint8_t *matched = calloc((size_t)n, 1);
    if (!matched) return -1;
    for (int64_t v = 0; v < n; v++) match[v] = v;
    for (int64_t t = 0; t < n; t++) {
        int64_t v = order[t];
        if (matched[v]) continue;
        int64_t best_w = -1, best_u = -1;
        for (int64_t i = indptr[v]; i < indptr[v + 1]; i++) {
            int64_t u = indices[i];
            if (!matched[u] && eweights[i] > best_w) {
                best_w = eweights[i];
                best_u = u;
            }
        }
        if (best_u >= 0) {
            match[v] = best_u;
            match[best_u] = v;
            matched[v] = 1;
            matched[best_u] = 1;
        }
    }
    free(matched);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Induced subgraph extraction                                         */
/* ------------------------------------------------------------------ */

/* Induced subgraph on `verts` (must be strictly ascending, so local
 * ids are monotone in global ids and each output adjacency row keeps
 * the parent's sorted order — the exact arrays of the lexsort-based
 * NumPy path).  Writes CSR arrays plus [max_incident, total_vweight,
 * max_vweight] into out_scalars.  Returns the output edge count, -1
 * on allocation failure, -2 if `verts` is not strictly ascending.
 */
int64_t subgraph_extract(
    int64_t n_parent,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *eweights,
    const int64_t *vweights,
    const int64_t *verts,
    int64_t k,
    int64_t *out_indptr,
    int64_t *out_indices,
    int64_t *out_weights,
    int64_t *out_vweights,
    int64_t *out_scalars)
{
    for (int64_t i = 1; i < k; i++)
        if (verts[i] <= verts[i - 1]) return -2;
    int64_t *local = malloc((size_t)n_parent * sizeof(int64_t));
    if (!local) return -1;
    memset(local, 0xff, (size_t)n_parent * sizeof(int64_t));
    for (int64_t i = 0; i < k; i++) local[verts[i]] = i;
    int64_t nnz = 0, maxinc = 0, total_vw = 0, max_vw = 0;
    out_indptr[0] = 0;
    for (int64_t i = 0; i < k; i++) {
        int64_t g = verts[i];
        int64_t inc = 0;
        for (int64_t j = indptr[g]; j < indptr[g + 1]; j++) {
            int64_t li = local[indices[j]];
            if (li >= 0) {
                out_indices[nnz] = li;
                out_weights[nnz] = eweights[j];
                inc += eweights[j];
                nnz++;
            }
        }
        if (inc > maxinc) maxinc = inc;
        out_indptr[i + 1] = nnz;
        int64_t vw = vweights[g];
        out_vweights[i] = vw;
        total_vw += vw;
        if (vw > max_vw) max_vw = vw;
    }
    free(local);
    out_scalars[0] = maxinc;
    out_scalars[1] = total_vw;
    out_scalars[2] = max_vw;
    return nnz;
}

/* ------------------------------------------------------------------ */
/* Greedy graph growing (GGGP)                                         */
/* ------------------------------------------------------------------ */

/* BFS levels from `source` (no mask); `level` must hold n entries. */
static void bfs_levels(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    int64_t source,
    int64_t *level,
    int64_t *queue)
{
    for (int64_t i = 0; i < n; i++) level[i] = -1;
    level[source] = 0;
    queue[0] = source;
    int64_t qh = 0, qt = 1;
    while (qh < qt) {
        int64_t v = queue[qh++];
        int64_t lv = level[v] + 1;
        for (int64_t i = indptr[v]; i < indptr[v + 1]; i++) {
            int64_t u = indices[i];
            if (level[u] < 0) {
                level[u] = lv;
                queue[qt++] = u;
            }
        }
    }
}

/* George-Liu pseudo-peripheral vertex, starting from vertex 0. */
static int64_t pseudo_peripheral(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    int64_t *level,
    int64_t *queue)
{
    int64_t current = 0;
    int64_t ecc = -1;
    for (;;) {
        bfs_levels(n, indptr, indices, current, level, queue);
        int64_t far = level[0];
        for (int64_t i = 1; i < n; i++)
            if (level[i] > far) far = level[i];
        if (far <= ecc) return current;
        ecc = far;
        for (int64_t i = 0; i < n; i++)
            if (level[i] == far) { current = i; break; }
    }
}

/* One bucket-queue growth trial; mirrors _grow_trial_buckets.  Returns
 * the growth cut and writes the side assignment (0 = grown side).
 */
static int64_t ggg_grow_one(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *eweights,
    const int64_t *vweights,
    const int64_t *total_w,
    int64_t start,
    int64_t target_left,
    int64_t bound,
    int64_t *side,
    int64_t *gain_cache,
    uint8_t *frontier_seen,
    int64_t *head,
    int64_t *tail,
    int64_t *ev,
    int64_t *enext)
{
    int64_t nbuckets = 2 * bound + 1;
    int64_t sent = bound + 1;
    for (int64_t i = 0; i < n; i++) side[i] = 1;
    memset(gain_cache, 0, (size_t)n * sizeof(int64_t));
    memset(frontier_seen, 0, (size_t)n);
    memset(head, 0xff, (size_t)nbuckets * sizeof(int64_t));
    int64_t weight_left = 0;
    int64_t cut = 0;
    int64_t g0 = -total_w[start];
    gain_cache[start] = g0;
    frontier_seen[start] = 1;
    int64_t nentries = 0;
    ev[0] = start;
    enext[0] = -1;
    head[g0 + bound] = 0;
    tail[g0 + bound] = 0;
    nentries = 1;
    int64_t pending = 1;
    int64_t maxg = g0;
    while (weight_left < target_left) {
        int64_t v = -1;
        while (pending) {
            while (head[maxg + bound] < 0) maxg--;
            int64_t e = head[maxg + bound];
            head[maxg + bound] = enext[e];
            pending--;
            int64_t u = ev[e];
            if (gain_cache[u] == maxg) { v = u; break; }
        }
        if (v < 0) {
            /* Queue exhausted (component done): jump to the first
             * unabsorbed vertex. */
            for (int64_t u = 0; u < n; u++)
                if (gain_cache[u] <= bound) { v = u; break; }
            if (v < 0) break;
            if (!frontier_seen[v]) {
                /* No absorbed neighbors: absorbing adds its whole
                 * incident weight to the cut. */
                gain_cache[v] = -total_w[v];
            }
        }
        side[v] = 0;
        weight_left += vweights[v];
        cut -= gain_cache[v];
        gain_cache[v] = sent;
        for (int64_t i = indptr[v]; i < indptr[v + 1]; i++) {
            int64_t u = indices[i];
            int64_t g = gain_cache[u];
            if (g > bound) continue;
            if (!frontier_seen[u]) {
                g = -total_w[u];
                frontier_seen[u] = 1;
            }
            g += 2 * eweights[i];
            gain_cache[u] = g;
            int64_t gi = g + bound;
            int64_t e2 = nentries++;
            ev[e2] = u;
            enext[e2] = -1;
            if (head[gi] < 0) head[gi] = e2; else enext[tail[gi]] = e2;
            tail[gi] = e2;
            if (g > maxg) maxg = g;
            pending++;
        }
    }
    return cut;
}

/* Full GGGP: ntrials growths (starts[t] < 0 means "pseudo-peripheral
 * from vertex 0"), best (lowest, first-wins) cut kept.  Writes the
 * winning side into `best_side`.  Returns 0 on success, -1 on
 * allocation failure.
 */
int64_t ggg_partition(
    int64_t n,
    const int64_t *indptr,
    const int64_t *indices,
    const int64_t *eweights,
    const int64_t *vweights,
    const int64_t *starts,
    int64_t ntrials,
    int64_t target_left,
    int64_t bound,
    int64_t *best_side)
{
    int64_t m2 = indptr[n];
    int64_t nbuckets = 2 * bound + 1;
    int64_t cap_entries = m2 + 2;
    int64_t *total_w = malloc((size_t)n * sizeof(int64_t));
    int64_t *side = malloc((size_t)n * sizeof(int64_t));
    int64_t *gain_cache = malloc((size_t)n * sizeof(int64_t));
    uint8_t *frontier_seen = malloc((size_t)n);
    int64_t *head = malloc((size_t)nbuckets * sizeof(int64_t));
    int64_t *tail = malloc((size_t)nbuckets * sizeof(int64_t));
    int64_t *ev = malloc((size_t)cap_entries * sizeof(int64_t));
    int64_t *enext = malloc((size_t)cap_entries * sizeof(int64_t));
    /* level/queue scratch for the pseudo-peripheral BFS reuses
     * gain_cache/side before the trials start. */
    if (!total_w || !side || !gain_cache || !frontier_seen ||
        !head || !tail || !ev || !enext) {
        free(total_w); free(side); free(gain_cache); free(frontier_seen);
        free(head); free(tail); free(ev); free(enext);
        return -1;
    }
    for (int64_t v = 0; v < n; v++) {
        int64_t s = 0;
        for (int64_t i = indptr[v]; i < indptr[v + 1]; i++) s += eweights[i];
        total_w[v] = s;
    }
    int64_t best_cut = 0;
    int has_best = 0;
    for (int64_t t = 0; t < ntrials; t++) {
        int64_t start = starts[t];
        if (start < 0)
            start = pseudo_peripheral(n, indptr, indices, gain_cache, side);
        int64_t cut = ggg_grow_one(
            n, indptr, indices, eweights, vweights, total_w,
            start, target_left, bound,
            side, gain_cache, frontier_seen, head, tail, ev, enext);
        if (!has_best || cut < best_cut) {
            has_best = 1;
            best_cut = cut;
            memcpy(best_side, side, (size_t)n * sizeof(int64_t));
        }
    }
    free(total_w); free(side); free(gain_cache); free(frontier_seen);
    free(head); free(tail); free(ev); free(enext);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Direct stiffness summation (SEAM)                                   */
/* ------------------------------------------------------------------ */

/* Fused DSS projection, compacted to the element-boundary points.
 *
 * Interior GLL points (multiplicity 1) are fixed points of the
 * projection up to one rounding (num/mass == field), so the kernel
 * copies the field through and only runs the average over the nb
 * element-local copies of shared points.  Copies are stored
 * segment-major — sorted by boundary point, original (ascending
 * element-local) order preserved inside each segment — so the
 * weighted sum per point accumulates in registers instead of
 * scattering into memory:
 *
 *   bidx[j]   flat element-local index of boundary copy j
 *   seg[p]    start of point p's copies in bidx/bmass (seg[nbpoints]=nb)
 *   bmass[j]  J-weighted quadrature mass at copy j
 *   inv_bgmass[p]  reciprocal of the summed mass of boundary point p
 *
 * field/out are (n, ncomp) C-order; num is caller scratch of size
 * nbpoints * ncomp.  When out == field the projection runs in place
 * and the passthrough copy is skipped.
 *
 * The constant geometry of the operator arrives as a 7-slot "plan"
 * (built once per DSSOperator) so the per-call ctypes marshalling is
 * 5 arguments instead of 11 — this call sits on the RK3 hot path at
 * ~10us total, where argument conversion is a measurable cost:
 *
 *   plan[0] n         total element-local points
 *   plan[1] nb        boundary copies
 *   plan[2] nbpoints  distinct boundary points
 *   plan[3] bidx      (const int64_t *)
 *   plan[4] seg       (const int64_t *), nbpoints + 1 offsets
 *   plan[5] bmass     (const double *)
 *   plan[6] inv_bgmass (const double *)
 *
 * Bit-identity contract with the numpy fallback in repro.seam.dss:
 * each point's contributions accumulate in ascending element-local
 * order (the same per-point order as weighted np.bincount over the
 * segment-major id array), the average is a multiply by the
 * reciprocal mass, and the library is compiled with -ffp-contract=off
 * so the mul/add pair is never fused into an FMA the fallback would
 * not perform.
 */
int64_t dss_apply(
    const int64_t *plan, int64_t ncomp,
    const double *field, double *num, double *out)
{
    const int64_t n = plan[0], nbpoints = plan[2];
    const int64_t *bidx = (const int64_t *)plan[3];
    const int64_t *seg = (const int64_t *)plan[4];
    const double *bmass = (const double *)plan[5];
    const double *inv_bgmass = (const double *)plan[6];
    if (out != field)
        memcpy(out, field, (size_t)(n * ncomp) * sizeof(double));
    if (ncomp == 1) {
        for (int64_t p = 0; p < nbpoints; p++) {
            double s = 0.0;
            for (int64_t j = seg[p]; j < seg[p + 1]; j++)
                s += bmass[j] * field[bidx[j]];
            num[p] = s * inv_bgmass[p];
        }
        for (int64_t p = 0; p < nbpoints; p++) {
            double v = num[p];
            for (int64_t j = seg[p]; j < seg[p + 1]; j++) out[bidx[j]] = v;
        }
    } else if (ncomp == 3) {
        for (int64_t p = 0; p < nbpoints; p++) {
            double s0 = 0.0, s1 = 0.0, s2 = 0.0;
            for (int64_t j = seg[p]; j < seg[p + 1]; j++) {
                double w = bmass[j];
                const double *src = field + bidx[j] * 3;
                s0 += w * src[0];
                s1 += w * src[1];
                s2 += w * src[2];
            }
            double g = inv_bgmass[p];
            num[p * 3] = s0 * g;
            num[p * 3 + 1] = s1 * g;
            num[p * 3 + 2] = s2 * g;
        }
        for (int64_t p = 0; p < nbpoints; p++) {
            double v0 = num[p * 3], v1 = num[p * 3 + 1], v2 = num[p * 3 + 2];
            for (int64_t j = seg[p]; j < seg[p + 1]; j++) {
                double *dst = out + bidx[j] * 3;
                dst[0] = v0;
                dst[1] = v1;
                dst[2] = v2;
            }
        }
    } else {
        for (int64_t p = 0; p < nbpoints; p++) {
            double g = inv_bgmass[p];
            for (int64_t c = 0; c < ncomp; c++) {
                double s = 0.0;
                for (int64_t j = seg[p]; j < seg[p + 1]; j++)
                    s += bmass[j] * field[bidx[j] * ncomp + c];
                num[p * ncomp + c] = s * g;
            }
        }
        for (int64_t p = 0; p < nbpoints; p++) {
            const double *src = num + p * ncomp;
            for (int64_t j = seg[p]; j < seg[p + 1]; j++) {
                double *dst = out + bidx[j] * ncomp;
                for (int64_t c = 0; c < ncomp; c++) dst[c] = src[c];
            }
        }
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Space-filling-curve keying                                          */
/* ------------------------------------------------------------------ */

/* Per-level table layout (stride 66 int64 slots per refinement level,
 * coarsest level first; built by repro.sfc.keys.schedule_tables):
 *
 *   [0]          radix r (2 or 3)
 *   [1]          child block size s at this level
 *   [2]          log2(s) when s is a power of two, else -1
 *   [3  + b]     visit rank of child block b = bx*3 + by
 *   [12 + i]     inverse-transform mxx of child i
 *   [21 + i]     inverse-transform mxy
 *   [30 + i]     inverse-transform myx
 *   [39 + i]     inverse-transform myy
 *   [48 + i]     1 when mxx + mxy < 0 (the s-1 x-offset applies)
 *   [57 + i]     1 when myx + myy < 0 (the s-1 y-offset applies)
 *
 * Decode contract (bit-identity with repro.sfc.keys._keys_numpy and
 * the generator's visit order): per level, the block coordinates
 * identify the child, the child's rank digit extends the mixed-radix
 * key, and the child's inverse D4 transform maps the cell into the
 * child's canonical frame.  All arithmetic is exact int64; keys are
 * accumulated in uint64 (n*n can reach 2^62 before overflow).
 */
#define SFC_STRIDE 66

int64_t sfc_keys(
    int64_t npts, int64_t nlevels, const int64_t *tables,
    int64_t n, const int64_t *x, const int64_t *y, uint64_t *keys)
{
    (void)n;
    for (int64_t p = 0; p < npts; p++) {
        int64_t u = x[p], v = y[p];
        uint64_t key = 0;
        const int64_t *lv = tables;
        for (int64_t l = 0; l < nlevels; l++, lv += SFC_STRIDE) {
            const int64_t r = lv[0], s = lv[1], shift = lv[2];
            int64_t bx, by;
            if (shift >= 0) {
                bx = u >> shift;
                by = v >> shift;
            } else {
                bx = u / s;
                by = v / s;
            }
            const int64_t i = lv[3 + bx * 3 + by];
            key = key * (uint64_t)(r * r) + (uint64_t)i;
            u -= bx * s;
            v -= by * s;
            const int64_t un =
                lv[12 + i] * u + lv[21 + i] * v + lv[48 + i] * (s - 1);
            v = lv[30 + i] * u + lv[39 + i] * v + lv[57 + i] * (s - 1);
            u = un;
        }
        keys[p] = key;
    }
    return 0;
}

/* Global cubed-sphere keys straight from element ids: gid -> face +
 * face-local (ix, iy) -> chain-oriented (u, v) -> face-local curve key
 * (same per-level decode as sfc_keys) + the face's chain offset.
 * rank[face] is the face's position in the canonical chain; coef holds
 * six (mxx, mxy, myx, myy, xneg, yneg) rows — the inverse orientation
 * of each face.  Fusing the face decode keeps the whole pipeline in
 * registers (the vectorized fallback pays ~10 array passes for it). */
int64_t sfc_face_keys(
    int64_t npts, int64_t nlevels, const int64_t *tables, int64_t ne,
    const int64_t *rank, const int64_t *coef,
    const int64_t *gids, uint64_t *keys)
{
    const int64_t n2 = ne * ne;
    for (int64_t p = 0; p < npts; p++) {
        const int64_t gid = gids[p];
        const int64_t face = gid / n2, rem = gid % n2;
        const int64_t iy = rem / ne, ix = rem % ne;
        const int64_t *c = coef + 6 * face;
        int64_t u = c[0] * ix + c[1] * iy + c[4] * (ne - 1);
        int64_t v = c[2] * ix + c[3] * iy + c[5] * (ne - 1);
        uint64_t key = 0;
        const int64_t *lv = tables;
        for (int64_t l = 0; l < nlevels; l++, lv += SFC_STRIDE) {
            const int64_t r = lv[0], s = lv[1], shift = lv[2];
            int64_t bx, by;
            if (shift >= 0) {
                bx = u >> shift;
                by = v >> shift;
            } else {
                bx = u / s;
                by = v / s;
            }
            const int64_t i = lv[3 + bx * 3 + by];
            key = key * (uint64_t)(r * r) + (uint64_t)i;
            u -= bx * s;
            v -= by * s;
            const int64_t un =
                lv[12 + i] * u + lv[21 + i] * v + lv[48 + i] * (s - 1);
            v = lv[30 + i] * u + lv[39 + i] * v + lv[57 + i] * (s - 1);
            u = un;
        }
        keys[p] = key + (uint64_t)rank[face] * (uint64_t)n2;
    }
    return 0;
}
