"""Ablation — rank-to-node mapping: can METIS recover the SFC edge?

The network ablation showed that, at O(1) elements per processor, much
of the SFC advantage is *rank locality* on the P690's 8-way SMP nodes.
A fair question: could METIS partitions win it back with a
topology-aware rank placement?  This bench compares identity, random
and greedy communication-packing mappings for every method and
records the answer.
"""

from __future__ import annotations

from repro.cubesphere import cubed_sphere_mesh
from repro.experiments import format_table, make_partition
from repro.graphs import mesh_graph
from repro.machine import (
    P690_CLUSTER,
    PerformanceModel,
    apply_mapping,
    greedy_comm_mapping,
    random_mapping,
)

NE, NPROC = 8, 192


def _run_matrix():
    graph = mesh_graph(cubed_sphere_mesh(NE))
    model = PerformanceModel()
    out = {}
    for method in ("sfc", "rb", "kway"):
        part = make_partition(NE, NPROC, method)
        times = {
            "identity": model.step_timing(graph, part).step_s,
            "random": model.step_timing(
                graph, apply_mapping(part, random_mapping(NPROC, seed=1))
            ).step_s,
            "greedy": model.step_timing(
                graph,
                apply_mapping(
                    part, greedy_comm_mapping(graph, part, P690_CLUSTER)
                ),
            ).step_s,
        }
        out[method] = times
    return out


def test_rank_mapping_reproduction(benchmark, save_artifact):
    results = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    rows = []
    for method, times in results.items():
        rows.append(
            [
                method,
                f"{times['identity'] * 1e6:.0f}",
                f"{times['random'] * 1e6:.0f}",
                f"{times['greedy'] * 1e6:.0f}",
            ]
        )
    save_artifact(
        "ablation_rank_mapping",
        format_table(
            ["method", "identity (us)", "random (us)", "greedy (us)"],
            rows,
            title=f"Time/step by rank mapping, K={6 * NE * NE} on {NPROC} procs",
        ),
    )
    # Random placement never helps; greedy never hurts much.
    for times in results.values():
        assert times["random"] >= times["identity"] * 0.98
        assert times["greedy"] <= times["random"] * 1.02
    # Even with greedy mapping, METIS should not overtake SFC here:
    # its load imbalance at 2 elements/processor remains.
    best_metis = min(results["rb"]["greedy"], results["kway"]["greedy"])
    assert results["sfc"]["identity"] < best_metis
