"""Section 4 text — the K=1944 Hilbert-Peano case.

"The SFC algorithm does offer a 7% performance advantage on 486
processors, which represents 4 elements per processor.  This result
can be compared to the K=384 test case on 96 processors ... The K=384
case demonstrates a 13% advantage for SFC compared to 7% for the
K=1944 case."

Reproduced: at 4 elements/processor, both resolutions show an SFC
advantage; the table records the measured gap for comparison with the
paper's 13%-vs-7% observation.
"""

from __future__ import annotations

from repro.experiments import (
    best_metis,
    format_table,
    hilbert_peano_gap_study,
    run_method,
    speedup_sweep,
)


def test_k1944_reproduction(benchmark, save_artifact):
    points = benchmark.pedantic(
        hilbert_peano_gap_study, kwargs={"elems_per_proc": 4}, rounds=1, iterations=1
    )
    rows = [
        [
            p.k,
            p.ne,
            p.curve_family,
            p.nproc,
            f"{p.sfc_speedup:.1f}",
            f"{p.best_metis_speedup:.1f}",
            f"{p.advantage * 100:+.0f}%",
        ]
        for p in points
    ]
    text = format_table(
        ["K", "Ne", "curve", "Nproc", "S(SFC)", "S(best METIS)", "advantage"],
        rows,
        title="SFC advantage at 4 elements/processor (paper: 13% for K=384, 7% for K=1944)",
    )
    save_artifact("k1944_hilbert_peano", text)
    by_k = {p.k: p for p in points}
    assert by_k[384].advantage > 0
    assert by_k[1944].advantage > 0


def test_k1944_full_sweep_never_behind(benchmark, save_artifact):
    """Across the whole K=1944 sweep, SFC never trails best METIS by
    more than a few percent."""
    results = benchmark.pedantic(
        speedup_sweep,
        args=(18,),
        kwargs={"nprocs": [54, 108, 162, 243, 324, 486, 648]},
        rounds=1,
        iterations=1,
    )
    nprocs = [r.nproc for r in results["sfc"]]
    rows = []
    for i, n in enumerate(nprocs):
        sfc = results["sfc"][i]
        bm = best_metis(results, i)
        rows.append([n, f"{sfc.speedup:.1f}", f"{bm.speedup:.1f}", bm.method])
        assert sfc.speedup > 0.95 * bm.speedup
    save_artifact(
        "k1944_sweep",
        format_table(
            ["Nproc", "S(SFC)", "S(best METIS)", "method"],
            rows,
            title="K=1944 (Hilbert-Peano) sweep",
        ),
    )


def test_k1944_partition_speed(benchmark):
    benchmark(run_method, 18, 486, "sfc")
