"""Figure 9 — sustained floating-point execution rate, K=384.

The paper plots total sustained Gflop/s of SEAM under SFC and the best
METIS partitioning on the P690.  Anchors: single-processor rate is 841
Mflop/s (16% of Power-4 peak) by construction; the SFC series peaks at
384 processors with a double-digit advantage (paper: 37%).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _sweep import sweep_and_render

from repro.experiments import run_method

NE = 8


def test_fig09_reproduction(benchmark, save_artifact, shared_engine):
    text, data = benchmark.pedantic(
        sweep_and_render,
        args=(NE, "gflops", "Figure 9: sustained Gflop/s, K=384, SFC vs best METIS"),
        kwargs={"engine": shared_engine},
        rounds=1,
        iterations=1,
    )
    save_artifact("fig09_gflops_k384", text)
    nprocs, sfc, metis = data["nprocs"], data["sfc"], data["metis"]
    # Single-processor anchor: 841 Mflop/s.
    assert sfc[0] == pytest.approx(0.841, abs=0.001)
    # Rate grows with processors and SFC ends ahead.
    assert sfc[-1] > sfc[0] * 50
    assert sfc[-1] > metis[-1] * 1.10
    # Sustained rate never exceeds Nproc * single-proc rate.
    for n, v in zip(nprocs, sfc):
        assert v <= n * 0.842


def test_fig09_single_point_speed(benchmark):
    benchmark(run_method, NE, 384, "sfc")
