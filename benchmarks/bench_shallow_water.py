"""Extension — the shallow-water dynamical core (paper ref. [9]).

Validates and times the nonlinear SW solver: Williamson TC2 held
steady (the geostrophic-balance benchmark every SW dynamical core must
pass), with per-step throughput measured at SEAM's np=8 — the numbers
behind the cost model's flops-per-element accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import format_table
from repro.seam import ShallowWaterSolver, build_geometry, williamson_tc2


def _hold_tc2(ne: int, npts: int, t_end: float):
    geom = build_geometry(ne, npts)
    solver = ShallowWaterSolver(geom)
    state0 = williamson_tc2(geom)
    state = solver.run(state0, t_end=t_end, cfl=0.4)
    return {
        "ne": ne,
        "npts": npts,
        "dh": float(np.abs(state.h - state0.h).max()),
        "dv": float(np.abs(state.v - state0.v).max()),
        "mass_drift": abs(solver.total_mass(state) - solver.total_mass(state0))
        / solver.total_mass(state0),
        "energy_drift": abs(
            solver.total_energy(state) - solver.total_energy(state0)
        )
        / solver.total_energy(state0),
        "rhs_evals": solver.rhs_evals,
    }


def test_tc2_hold_reproduction(benchmark, save_artifact):
    results = benchmark.pedantic(
        lambda: [_hold_tc2(2, 6, 0.5), _hold_tc2(3, 8, 0.5)],
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r["ne"],
            r["npts"],
            f"{r['dh']:.2e}",
            f"{r['dv']:.2e}",
            f"{r['mass_drift']:.1e}",
            f"{r['energy_drift']:.1e}",
            r["rhs_evals"],
        ]
        for r in results
    ]
    save_artifact(
        "shallow_water_tc2",
        format_table(
            ["Ne", "np", "max|dh|", "max|dv|", "mass drift", "energy drift", "RHS evals"],
            rows,
            title="Williamson TC2 steady-state hold (t = 0.5)",
        ),
    )
    for r in results:
        assert r["dh"] < 1e-3
        assert r["mass_drift"] < 1e-12
        assert r["energy_drift"] < 1e-8
    # Higher order holds the balance tighter.
    assert results[1]["dh"] < results[0]["dh"]


@pytest.mark.parametrize("ne", [2, 4], ids=lambda n: f"ne{n}")
def test_sw_step_throughput(benchmark, ne):
    geom = build_geometry(ne, 8)
    solver = ShallowWaterSolver(geom)
    state = williamson_tc2(geom)
    dt = solver.stable_dt(state, 0.4)
    result = benchmark(solver.step, state, dt)
    assert np.isfinite(result.h).all()
