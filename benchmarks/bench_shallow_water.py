"""Extension — the shallow-water dynamical core (paper ref. [9]).

Validates and times the nonlinear SW solver: Williamson TC2 held
steady (the geostrophic-balance benchmark every SW dynamical core must
pass), with per-step throughput measured at SEAM's np=8 — the numbers
behind the cost model's flops-per-element accounting.

Also measures the batched-engine speedups against the preserved
pre-batching reference implementations (``repro.seam._reference``):
RK3 step, fused DSS velocity projection, and geometry build, written
to ``results/shallow_water_tc2.data.json``.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.experiments import format_table
from repro.seam import ShallowWaterSolver, build_geometry, williamson_tc2


def _hold_tc2(ne: int, npts: int, t_end: float):
    geom = build_geometry(ne, npts)
    solver = ShallowWaterSolver(geom)
    state0 = williamson_tc2(geom)
    state = solver.run(state0, t_end=t_end, cfl=0.4)
    return {
        "ne": ne,
        "npts": npts,
        "dh": float(np.abs(state.h - state0.h).max()),
        "dv": float(np.abs(state.v - state0.v).max()),
        "mass_drift": abs(solver.total_mass(state) - solver.total_mass(state0))
        / solver.total_mass(state0),
        "energy_drift": abs(
            solver.total_energy(state) - solver.total_energy(state0)
        )
        / solver.total_energy(state0),
        "rhs_evals": solver.rhs_evals,
    }


def test_tc2_hold_reproduction(benchmark, save_artifact):
    results = benchmark.pedantic(
        lambda: [_hold_tc2(2, 6, 0.5), _hold_tc2(3, 8, 0.5)],
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r["ne"],
            r["npts"],
            f"{r['dh']:.2e}",
            f"{r['dv']:.2e}",
            f"{r['mass_drift']:.1e}",
            f"{r['energy_drift']:.1e}",
            r["rhs_evals"],
        ]
        for r in results
    ]
    save_artifact(
        "shallow_water_tc2",
        format_table(
            ["Ne", "np", "max|dh|", "max|dv|", "mass drift", "energy drift", "RHS evals"],
            rows,
            title="Williamson TC2 steady-state hold (t = 0.5)",
        ),
    )
    for r in results:
        assert r["dh"] < 1e-3
        assert r["mass_drift"] < 1e-12
        assert r["energy_drift"] < 1e-8
    # Higher order holds the balance tighter.
    assert results[1]["dh"] < results[0]["dh"]


@pytest.mark.parametrize("ne", [2, 4], ids=lambda n: f"ne{n}")
def test_sw_step_throughput(benchmark, ne):
    geom = build_geometry(ne, 8)
    solver = ShallowWaterSolver(geom)
    state = williamson_tc2(geom)
    dt = solver.stable_dt(state, 0.4)
    result = benchmark(solver.step, state, dt)
    assert np.isfinite(result.h).all()


def _best(fn, inner: int = 1, repeats: int = 5) -> float:
    """Best-of wall seconds for ``inner`` calls of ``fn``, per call."""
    fn()  # warm
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (perf_counter() - t0) / inner)
    return best


def test_batched_engine_speedup(save_artifact):
    """Before/after table: batched engine vs the pre-PR reference.

    The "before" side is the preserved historical implementation
    (einsum derivatives, per-component ``np.add.at`` DSS, per-element
    geometry loop); "after" is the shipping batched engine.  One RK3
    step must agree to <= 1e-12 — the speedup is free of accuracy
    loss.
    """
    from repro.seam._reference import ReferenceDSS, ReferenceShallowWaterSolver
    from repro.seam.element import _build_grid_geometry, _element_geometry

    ne, npts = 3, 8
    geom = build_geometry(ne, npts)
    state = williamson_tc2(geom)
    new_solver = ShallowWaterSolver(geom)
    old_solver = ReferenceShallowWaterSolver(geom)
    dt = 0.5 * new_solver.stable_dt(state, 0.4)

    # Equivalence first: the speedup must not change the answer.
    s_new = new_solver.step(state, dt)
    s_old = old_solver.step(state.copy(), dt)
    dv = float(np.abs(s_new.v - s_old.v).max())
    dh = float(np.abs(s_new.h - s_old.h).max())
    assert dv < 1e-12 and dh < 1e-12

    # RK3 step.
    step_new = _best(lambda: new_solver.step(state, dt), inner=10)
    step_old = _best(lambda: old_solver.step(state, dt), inner=3)

    # DSS velocity projection: one fused (nelem, np, np, 3) apply vs
    # the historical per-component loop.
    old_dss = ReferenceDSS(geom)
    vec = np.random.default_rng(0).standard_normal((geom.nelem, npts, npts, 3))
    out = np.empty_like(vec)
    assert np.abs(
        new_solver.dss.apply(vec) - old_dss.apply_vector(vec)
    ).max() < 1e-12
    dss_new = _best(lambda: new_solver.dss.apply(vec, out=out), inner=500)
    dss_old = _best(lambda: old_dss.apply_vector(vec), inner=50)

    # Geometry build at ne=8: batched per-face stacks vs the
    # historical per-element loop.
    ne_geo = 8
    mesh = build_geometry(ne_geo, npts).mesh
    basis = build_geometry(ne_geo, npts).basis
    geo_new = _best(lambda: _build_grid_geometry(ne_geo, npts), inner=3)

    def old_geometry_loop() -> None:
        for gid in range(mesh.nelem):
            _element_geometry(mesh, basis, gid)

    geo_old = _best(old_geometry_loop, inner=1, repeats=3)

    rows = [
        ["RK3 step (ne=3, np=8)", f"{1e3 * step_old:.2f} ms",
         f"{1e3 * step_new:.2f} ms", f"{step_old / step_new:.1f}x"],
        ["DSS apply, 3-comp (ne=3, np=8)", f"{1e6 * dss_old:.1f} us",
         f"{1e6 * dss_new:.1f} us", f"{dss_old / dss_new:.1f}x"],
        [f"geometry build (ne={ne_geo}, np=8)", f"{1e3 * geo_old:.2f} ms",
         f"{1e3 * geo_new:.2f} ms", f"{geo_old / geo_new:.1f}x"],
    ]
    save_artifact(
        "shallow_water_tc2_speedup",
        format_table(
            ["operation", "before", "after", "speedup"],
            rows,
            title="Batched SEAM engine vs pre-batching reference",
        ),
        data={
            "ne": ne,
            "npts": npts,
            "step_before_s": step_old,
            "step_after_s": step_new,
            "step_speedup": step_old / step_new,
            "dss_apply_before_s": dss_old,
            "dss_apply_after_s": dss_new,
            "dss_apply_speedup": dss_old / dss_new,
            "geometry_ne": ne_geo,
            "geometry_before_s": geo_old,
            "geometry_after_s": geo_new,
            "geometry_speedup": geo_old / geo_new,
            "step_max_abs_dv": dv,
            "step_max_abs_dh": dh,
        },
    )
    # Acceptance floors: >=3x RK3 step, >=5x DSS apply.
    assert step_old / step_new >= 3.0
    assert dss_old / dss_new >= 5.0
