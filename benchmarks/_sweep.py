"""Shared helpers for the figure benches (speedup / Gflops sweeps)."""

from __future__ import annotations

from repro.experiments import best_metis, format_series, speedup_sweep
from repro.service import PartitionEngine


def sweep_and_render(
    ne: int, quantity: str, title: str, engine: PartitionEngine | None = None
) -> tuple[str, dict]:
    """Run the full sweep for a resolution and render a figure series.

    Args:
        ne: Resolution.
        quantity: ``"speedup"`` or ``"gflops"``.
        title: Figure title for the artifact.
        engine: Optional partition service engine; the sweep is then
            served as one cached/parallel batch (bit-identical results).

    Returns:
        ``(text, data)`` where data has ``nprocs``, ``sfc`` and
        ``metis`` value lists for assertions.
    """
    results = speedup_sweep(ne, engine=engine)
    nprocs = [r.nproc for r in results["sfc"]]

    def value(r):
        return r.speedup if quantity == "speedup" else r.gflops

    sfc_vals = [value(r) for r in results["sfc"]]
    metis_vals = [value(best_metis(results, i)) for i in range(len(nprocs))]
    metis_methods = [best_metis(results, i).method for i in range(len(nprocs))]
    text = format_series(
        "Nproc",
        nprocs,
        {
            f"SFC {quantity}": [f"{v:.1f}" for v in sfc_vals],
            f"best METIS {quantity}": [f"{v:.1f}" for v in metis_vals],
            "best METIS method": metis_methods,
            "SFC advantage": [
                f"{(a / b - 1) * 100:+.0f}%" for a, b in zip(sfc_vals, metis_vals)
            ],
        },
        title=title,
    )
    return text, {"nprocs": nprocs, "sfc": sfc_vals, "metis": metis_vals}
