"""Figure 10 — sustained floating-point execution rate, K=1536.

The paper's largest Hilbert case (Ne = 2^4): SFC delivers a 22% higher
sustained rate than the best METIS partitioning at the machine's
768-processor job limit.  We assert the shape (monotone growth, SFC
ahead at 768 by a double-digit margin).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _sweep import sweep_and_render

from repro.experiments import run_method

NE = 16


def test_fig10_reproduction(benchmark, save_artifact, shared_engine):
    # The heaviest figure sweep in the suite — served as one parallel
    # batch through the session-shared partition engine (the pool is
    # forked once for the whole bench session).
    engine = shared_engine
    text, data = benchmark.pedantic(
        sweep_and_render,
        args=(NE, "gflops", "Figure 10: sustained Gflop/s, K=1536, SFC vs best METIS"),
        kwargs={"engine": engine},
        rounds=1,
        iterations=1,
    )
    save_artifact("fig10_gflops_k1536", text)
    nprocs, sfc, metis = data["nprocs"], data["sfc"], data["metis"]
    assert nprocs[-1] == 768  # machine job limit, not K
    i768 = nprocs.index(768)
    assert sfc[i768] / metis[i768] - 1 > 0.10  # paper: 22%
    # SFC rate should be near-monotone through the sweep.
    drops = sum(1 for a, b in zip(sfc, sfc[1:]) if b < a * 0.98)
    assert drops <= 2


def test_fig10_partition_speed_at_768(benchmark):
    benchmark(run_method, NE, 768, "sfc")
