"""Figure 7 — speedup vs single processor, K=384, SFC vs METIS.

Paper claims reproduced as assertions: SFC comparable to METIS at
small processor counts; advantage above 50 processors (fewer than 8
elements per processor); large advantage at 384 processors (paper:
37%; we assert double digits — the absolute % depends on network
constants, the shape does not).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _sweep import sweep_and_render

from repro.experiments import run_method

NE = 8


def test_fig07_reproduction(benchmark, save_artifact, shared_engine):
    # Served through the session-shared partition engine: the whole
    # sweep is one deduplicated batch fanned out over a worker pool
    # that persists across the figure benches.
    engine = shared_engine
    text, data = benchmark.pedantic(
        sweep_and_render,
        args=(NE, "speedup", "Figure 7: speedup, K=384, SFC vs best METIS"),
        kwargs={"engine": engine},
        rounds=1,
        iterations=1,
    )
    save_artifact("fig07_speedup_k384", text)
    nprocs, sfc, metis = data["nprocs"], data["sfc"], data["metis"]
    for n, a, b in zip(nprocs, sfc, metis):
        if n <= 48:
            assert a > 0.9 * b, f"SFC should be comparable at Nproc={n}"
        if n > 50:
            assert a > b, f"SFC should win above 50 procs (Nproc={n})"
    i384 = nprocs.index(384)
    assert sfc[i384] / metis[i384] - 1 > 0.10


def test_fig07_single_point_speed(benchmark):
    """Time one full sweep point (partition + metrics + machine model)."""
    benchmark(run_method, NE, 96, "sfc")
