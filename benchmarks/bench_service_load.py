"""Closed-loop load harness for the async partition server.

Drives an in-process :class:`~repro.server.PartitionServer` (ephemeral
port, real sockets) with N concurrent keep-alive clients issuing a
Zipf-distributed mix over ``(ne, nparts, method)``, in five phases:

1. **burst** — one uncached key hit by many concurrent clients at
   once: every request but one must coalesce onto the single compute.
2. **cold** — the Zipf mix against an empty cache at moderate
   concurrency; hot keys coalesce, the tail computes.
3. **warm** — the same mix at high concurrency against the now-warm
   cache; every answer is a memory hit that never touches the pool.
4. **disconnect** — clients that send a request and abort without
   reading the response, mid-compute and mid-cache-hit; the server
   must drain to idle and keep answering.
5. **saturation** — a second server with a tiny ``--max-pending``
   takes a volley of distinct cache misses; the overflow must be
   rejected with 503 + Retry-After, not queued unboundedly.

Between warm and disconnect an observability A/B re-runs the warm mix
with the JSONL access log off then on (``obs_off``/``obs_on``), and a
final traced mini-run exports a Chrome trace.  Both artifacts land in
``results/`` (``access_log.jsonl``, ``trace_sample.json``) for CI to
upload.

Reports p50/p99 latency, throughput, coalesce rate, and cache hit
rate per phase to ``benchmarks/results/bench_service_load.json`` and
exits non-zero if an acceptance check fails:

* warm p99 < 10x warm p50 (cached latency stays flat under load);
* coalesce rate > 0 on the duplicate burst;
* zero dropped or hung requests, including across forced disconnects;
* the saturation volley sees >= 1 rejection and every request gets a
  definitive answer (200 or 503 — nothing hangs).

Run ``python benchmarks/bench_service_load.py`` for the full profile
(warm concurrency 256) or ``--smoke`` for the ~200-request CI profile.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
from collections import Counter
from pathlib import Path
from time import perf_counter

from repro.server import Connection, PartitionServer, fetch
from repro.service import PartitionEngine

RESULTS_DIR = Path(__file__).parent / "results"

#: The request universe: small meshes so computes are quick, three
#: families so the mix exercises distinct code paths.
MIX_NE = (2, 3, 4, 6)
MIX_NPARTS = (4, 6, 8, 12)
MIX_METHODS = ("sfc", "rb", "block")
ZIPF_S = 1.1  # mild skew: a hot head, a long computed tail


def build_mix(rng: random.Random) -> tuple[list[dict], list[float]]:
    """The request universe and its Zipf popularity weights."""
    combos = [
        {"ne": ne, "nparts": nparts, "method": method}
        for method in MIX_METHODS
        for ne in MIX_NE
        for nparts in MIX_NPARTS
    ]
    rng.shuffle(combos)  # decouple popularity rank from parameter order
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(combos))]
    return combos, weights


def percentile(samples: list[float], q: float) -> float:
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def run_phase(
    host: str,
    port: int,
    *,
    clients: int,
    requests: int,
    mix: list[dict],
    weights: list[float],
    rng: random.Random,
    timeout: float = 60.0,
) -> dict:
    """Closed loop: ``clients`` connections race through ``requests``."""
    latencies: list[float] = []
    statuses: Counter = Counter()
    sources: Counter = Counter()
    dropped = 0
    remaining = [requests]

    async def client() -> None:
        nonlocal dropped
        conn = await Connection.open(host, port)
        try:
            while remaining[0] > 0:
                remaining[0] -= 1
                payload = rng.choices(mix, weights)[0]
                t0 = perf_counter()
                try:
                    resp = await asyncio.wait_for(
                        conn.post_json("/partition", payload), timeout
                    )
                except (asyncio.TimeoutError, OSError):
                    dropped += 1
                    return
                latencies.append(perf_counter() - t0)
                statuses[resp.status] += 1
                if resp.status == 200:
                    sources[resp.json()["source"]] += 1
        finally:
            await conn.close()

    start = perf_counter()
    await asyncio.gather(*(client() for _ in range(clients)))
    wall_s = perf_counter() - start
    answered = sum(statuses.values())
    return {
        "clients": clients,
        "requests": requests,
        "answered": answered,
        "dropped_or_hung": dropped,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(answered / wall_s, 1) if wall_s else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "sources": dict(sorted(sources.items())),
    }


async def run_burst(host: str, port: int, *, clients: int) -> dict:
    """Concurrent identical requests on one uncached key."""
    payload = {"ne": 8, "nparts": 16, "method": "sfc"}

    async def one() -> str:
        async with await Connection.open(host, port) as conn:
            resp = await conn.post_json("/partition", payload)
            return resp.json()["source"] if resp.status == 200 else "error"

    sources = Counter(await asyncio.gather(*(one() for _ in range(clients))))
    total = sum(sources.values())
    return {
        "clients": clients,
        "sources": dict(sorted(sources.items())),
        "coalesce_rate": round(sources["coalesced"] / total, 3),
    }


async def run_disconnects(
    host: str,
    port: int,
    *,
    aborts: int,
    mix: list[dict],
    weights: list[float],
    rng: random.Random,
) -> dict:
    """Fire-and-abort clients, then prove the server drained and serves."""
    for i in range(aborts):
        conn = await Connection.open(host, port)
        # Alternate between an uncached compute (worker in flight when
        # the client dies) and a warm hit (abort mid-response-write).
        if i % 2 == 0:
            payload = {"ne": 4, "nparts": 6, "method": "random", "seed": 1000 + i}
        else:
            payload = rng.choices(mix, weights)[0]
        body = json.dumps(payload).encode()
        conn._writer.write(
            b"POST /partition HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        await conn._writer.drain()
        conn.abort()

    # The orphaned computes must finish and the server must drain idle.
    deadline = asyncio.get_running_loop().time() + 60.0
    while True:
        health = (await fetch(host, port, "GET", "/healthz")).json()
        if health["inflight"] == 0:
            break
        if asyncio.get_running_loop().time() > deadline:
            return {"aborts": aborts, "drained": False, "healthz": health}
        await asyncio.sleep(0.05)
    # ... and still answer normal traffic afterwards.
    resp = await fetch(
        host, port, "POST", "/partition",
        json.dumps({"ne": 4, "nparts": 6, "method": "random", "seed": 1000}).encode(),
    )
    return {
        "aborts": aborts,
        "drained": True,
        "post_abort_status": resp.status,
        "post_abort_source": resp.json().get("source") if resp.status == 200 else None,
    }


async def run_saturation(*, max_pending: int, volley: int) -> dict:
    """Distinct cache misses against a tiny admission limit."""
    async with PartitionServer(PartitionEngine(), max_pending=max_pending) as server:
        host, port = server.address

        async def one(seed: int) -> int:
            payload = {"ne": 6, "nparts": 8, "method": "random", "seed": seed}
            async with await Connection.open(host, port) as conn:
                return (await conn.post_json("/partition", payload)).status

        statuses = Counter(
            await asyncio.gather(*(one(seed) for seed in range(volley)))
        )
        return {
            "max_pending": max_pending,
            "volley": volley,
            "statuses": {str(k): v for k, v in sorted(statuses.items())},
            "rejected_503": statuses[503],
            "served_200": statuses[200],
        }


async def run_observability_ab(
    host: str,
    port: int,
    *,
    clients: int,
    requests: int,
    mix: list[dict],
    weights: list[float],
    rng: random.Random,
    reps: int = 3,
) -> tuple[dict, dict, dict]:
    """Warm-mix A/B: access logging off vs on, same traffic shape.

    Runs against the already-warm cache so both legs price pure server
    overhead rather than compute.  Queueing at high concurrency makes a
    single p50 swing by ±20%, so the legs are interleaved ``reps``
    times and compared at their min-p50 (the noise floor).  The "on"
    legs leave the JSONL access log behind at
    ``results/access_log.jsonl`` as a CI artifact.
    """
    from repro.telemetry import add_sink, remove_sink

    RESULTS_DIR.mkdir(exist_ok=True)
    access_path = RESULTS_DIR / "access_log.jsonl"
    access_path.unlink(missing_ok=True)
    legs: dict[str, list[dict]] = {"off": [], "on": []}
    for _ in range(reps):
        legs["off"].append(await run_phase(
            host, port, clients=clients, requests=requests,
            mix=mix, weights=weights, rng=rng,
        ))
        sink = add_sink(access_path, events={"access"})
        try:
            legs["on"].append(await run_phase(
                host, port, clients=clients, requests=requests,
                mix=mix, weights=weights, rng=rng,
            ))
        finally:
            remove_sink(sink)
    best = {k: min(runs, key=lambda r: r["p50_ms"]) for k, runs in legs.items()}
    for name, runs in legs.items():
        best[name]["dropped_or_hung"] = sum(r["dropped_or_hung"] for r in runs)
    overhead = None
    if best["off"]["p50_ms"]:
        overhead = round(
            100.0
            * (best["on"]["p50_ms"] - best["off"]["p50_ms"])
            / best["off"]["p50_ms"],
            1,
        )
    summary = {
        "reps": reps,
        "off_p50_ms": best["off"]["p50_ms"],
        "on_p50_ms": best["on"]["p50_ms"],
        "p50_overhead_pct": overhead,
        "off_p50s_ms": [r["p50_ms"] for r in legs["off"]],
        "on_p50s_ms": [r["p50_ms"] for r in legs["on"]],
        "access_log": str(access_path),
        "access_records": sum(1 for _ in access_path.open()),
    }
    return best["off"], best["on"], summary


async def run_trace_sample() -> dict:
    """A short traced run exporting a Chrome-trace artifact.

    One client trace id spans both requests: the first computes (so the
    export contains server, engine, *and* worker-process spans under
    that id), the second is a cache hit.  CI uploads the JSON; open it
    in ui.perfetto.dev.
    """
    from repro.telemetry import RequestContext, telemetry_session
    from repro.telemetry.exporters import write_chrome_trace

    trace_path = RESULTS_DIR / "trace_sample.json"
    with telemetry_session(command="bench_service_load") as session:
        async with PartitionServer(PartitionEngine()) as server:
            host, port = server.address
            ctx = RequestContext.new()
            for _ in range(2):
                async with await Connection.open(host, port) as conn:
                    resp = await conn.request(
                        "POST",
                        "/partition",
                        json.dumps({"ne": 4, "nparts": 6}).encode(),
                        headers={"traceparent": ctx.traceparent()},
                    )
                    assert resp.status == 200
                    assert resp.json()["trace_id"] == ctx.trace_id
    RESULTS_DIR.mkdir(exist_ok=True)
    write_chrome_trace(trace_path, session)
    return {
        "path": str(trace_path),
        "spans": len(session.tracer.spans),
        "trace_id": ctx.trace_id,
    }


def scrape_counter(metrics_text: str, name: str) -> int:
    total = 0
    for line in metrics_text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += int(float(line.rsplit(" ", 1)[1]))
    return total


async def main_async(args: argparse.Namespace) -> dict:
    rng = random.Random(args.seed)
    mix, weights = build_mix(rng)
    report: dict = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "config": {
            "mix_size": len(mix),
            "zipf_s": ZIPF_S,
            "cold_clients": args.cold_clients,
            "warm_clients": args.warm_clients,
            "requests": args.requests,
            "jobs": args.jobs,
        },
        "phases": {},
    }
    phases = report["phases"]

    engine = PartitionEngine(jobs=args.jobs)
    async with PartitionServer(engine) as server:
        host, port = server.address
        phases["burst"] = await run_burst(host, port, clients=args.cold_clients)
        phases["cold"] = await run_phase(
            host, port,
            clients=args.cold_clients, requests=args.requests,
            mix=mix, weights=weights, rng=rng,
        )
        phases["warm"] = await run_phase(
            host, port,
            clients=args.warm_clients, requests=args.requests,
            mix=mix, weights=weights, rng=rng,
        )
        phases["obs_off"], phases["obs_on"], report["observability"] = (
            await run_observability_ab(
                host, port,
                clients=args.warm_clients,
                requests=max(50, args.requests // 2),
                mix=mix, weights=weights, rng=rng,
            )
        )
        phases["disconnect"] = await run_disconnects(
            host, port, aborts=args.aborts, mix=mix, weights=weights, rng=rng,
        )
        metrics_text = (await fetch(host, port, "GET", "/metrics")).body.decode()
        report["server_metrics"] = {
            name: scrape_counter(metrics_text, name)
            for name in (
                "server_coalesced_total",
                "server_rejected_total",
                "server_requests_total",
            )
        }
        report["cache_hit_rate"] = round(engine.stats.hit_rate, 3)
    phases["saturation"] = await run_saturation(
        max_pending=args.max_pending, volley=args.volley
    )
    report["trace_sample"] = await run_trace_sample()

    warm, sat = phases["warm"], phases["saturation"]
    total_dropped = sum(
        p.get("dropped_or_hung", 0) for p in phases.values()
    )
    report["checks"] = {
        "warm_p99_lt_10x_p50": warm["p99_ms"] < 10.0 * warm["p50_ms"],
        "burst_coalesces": phases["burst"]["coalesce_rate"] > 0.0,
        "zero_dropped_or_hung": total_dropped == 0,
        "disconnects_drained": phases["disconnect"]["drained"]
        and phases["disconnect"].get("post_abort_status") == 200,
        "saturation_rejects_503": sat["rejected_503"] >= 1
        and sat["rejected_503"] + sat["served_200"] == sat["volley"],
    }
    report["ok"] = all(report["checks"].values())
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI profile: ~200 requests at concurrency 32",
    )
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per timed phase")
    parser.add_argument("--cold-clients", type=int, default=32)
    parser.add_argument("--warm-clients", type=int, default=None,
                        help="warm-phase concurrency (default 256; smoke 32)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="engine worker processes")
    parser.add_argument("--aborts", type=int, default=8,
                        help="forced client disconnects")
    parser.add_argument("--max-pending", type=int, default=2,
                        help="admission limit for the saturation probe")
    parser.add_argument("--volley", type=int, default=12,
                        help="distinct concurrent misses in the saturation probe")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--out", type=Path,
                        default=RESULTS_DIR / "bench_service_load.json")
    args = parser.parse_args(argv)
    if args.warm_clients is None:
        args.warm_clients = 32 if args.smoke else 256
    if args.requests is None:
        args.requests = 200 if args.smoke else 2000

    report = asyncio.run(main_async(args))
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for phase, data in report["phases"].items():
        line = ", ".join(
            f"{k}={v}" for k, v in data.items() if not isinstance(v, dict)
        )
        print(f"[{phase}] {line}")
    print(f"[metrics] {report['server_metrics']}, "
          f"cache_hit_rate={report['cache_hit_rate']}")
    obs = report["observability"]
    print(f"[observability] off_p50_ms={obs['off_p50_ms']}, "
          f"on_p50_ms={obs['on_p50_ms']}, "
          f"p50_overhead_pct={obs['p50_overhead_pct']}, "
          f"access_records={obs['access_records']}")
    trace = report["trace_sample"]
    print(f"[trace] {trace['spans']} spans -> {trace['path']}")
    for check, passed in report["checks"].items():
        print(f"[check] {check}: {'ok' if passed else 'FAIL'}")
    print(f"-> {args.out}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
