"""Extension — convergence of the spectral-element substrate.

Credibility check for the cost model's numerical core: transport error
must fall spectrally with the GLL order and with element refinement.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.experiments.convergence import transport_convergence


def test_transport_convergence_reproduction(benchmark, save_artifact):
    points = benchmark.pedantic(
        transport_convergence,
        kwargs={"nes": (2, 4), "npts_list": (4, 6, 8)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.ne, p.npts, p.dof, *p.norms.as_row()]
        for p in points
    ]
    save_artifact(
        "convergence_transport",
        format_table(
            ["Ne", "np", "DOF", "l1", "l2", "linf"],
            rows,
            title="Transport error vs resolution (cosine bell, half radian)",
        ),
    )
    by = {(p.ne, p.npts): p.norms.l2 for p in points}
    # Spectral decay in np at fixed ne.
    assert by[(2, 8)] < by[(2, 4)] / 5
    assert by[(4, 8)] < by[(4, 4)] / 5
    # Refinement in ne at fixed np helps too.
    assert by[(4, 6)] < by[(2, 6)]
    # SEAM's operating point is accurate.
    assert by[(4, 8)] < 5e-3
