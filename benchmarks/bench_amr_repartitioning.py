"""Extension — adaptive refinement and dynamic rebalancing with SFCs.

The paper's introduction motivates SFC partitioning through its AMR
track record (Behrens & Zimmermann; Griebel & Zumbusch; Parashar;
Pilkington & Baden).  This bench quantifies that motivation on the
cubed-sphere: as a refinement region sweeps the sphere, the SFC re-cut
keeps leaf-work balance with bounded migration, while a fresh graph
partition of each refined mesh reshuffles nearly everything.
"""

from __future__ import annotations

import numpy as np

from repro.cubesphere import cubed_sphere_curve, refine_where
from repro.experiments import format_table
from repro.graphs import mesh_graph
from repro.metis import part_graph
from repro.partition import migration_cost

NE, NPROC = 8, 48


def _storm_track():
    curve = cubed_sphere_curve(NE)
    mesh = curve.mesh
    lon, lat = mesh.centers_lonlat
    steps = []
    prev_sfc = None
    prev_metis = None
    for center in np.linspace(0, 2 * np.pi, 7)[:-1]:
        dlon = np.angle(np.exp(1j * (lon - center)))
        mask = (np.abs(dlon) < 0.6) & (np.abs(lat) < 0.6)
        rm = refine_where(curve, mask, level=1)
        sfc_part = rm.partition(NPROC)
        g = mesh_graph(mesh, vweights=rm.leaves_per_element())
        metis_part = part_graph(g, NPROC, "kway", seed=int(center * 10))
        entry = {
            "refined": int(mask.sum()),
            "sfc_lb": rm.imbalance(sfc_part),
            "metis_lb": rm.imbalance(metis_part),
        }
        entry["sfc_moved"] = (
            migration_cost(prev_sfc, sfc_part).fraction_moved if prev_sfc else 0.0
        )
        entry["metis_moved"] = (
            migration_cost(prev_metis, metis_part).fraction_moved
            if prev_metis
            else 0.0
        )
        prev_sfc, prev_metis = sfc_part, metis_part
        steps.append(entry)
    return steps


def test_amr_repartitioning_reproduction(benchmark, save_artifact):
    steps = benchmark.pedantic(_storm_track, rounds=1, iterations=1)
    rows = [
        [
            i,
            s["refined"],
            f"{s['sfc_lb']:.3f}",
            f"{100 * s['sfc_moved']:.0f}%",
            f"{s['metis_lb']:.3f}",
            f"{100 * s['metis_moved']:.0f}%",
        ]
        for i, s in enumerate(steps)
    ]
    save_artifact(
        "amr_repartitioning",
        format_table(
            ["step", "refined elems", "SFC LB", "SFC moved", "KWAY LB", "KWAY moved"],
            rows,
            title=f"Moving refinement region, K={6 * NE * NE} on {NPROC} procs",
        ),
    )
    moved_sfc = [s["sfc_moved"] for s in steps[1:]]
    moved_metis = [s["metis_moved"] for s in steps[1:]]
    # The SFC re-cut must migrate (substantially) less on average.
    assert np.mean(moved_sfc) < 0.7 * np.mean(moved_metis)
    # And keep leaf balance reasonable despite atomic 4-leaf elements.
    assert max(s["sfc_lb"] for s in steps) < 0.5
