"""Ablation — why Hilbert, not a cheaper ordering?

Compares the paper's curves against boustrophedon scanlines (continuous
but stringy) and Morton/Z-order (compact but discontinuous) on the
face-local locality metrics, plus the end-to-end effect of cutting a
face with each ordering.  This quantifies both properties the Hilbert
family needs: segment compactness (drives communication volume) and
unit-step continuity (enables the 6-face chaining of Fig. 6).
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table
from repro.sfc import analyze_curve, hilbert_curve
from repro.sfc.baselines import (
    boustrophedon_curve,
    is_continuous_ordering,
    morton_curve,
)

SIZE_LEVEL = 5  # 32 x 32 face
NSEG = 16


def _curves():
    return {
        "hilbert": hilbert_curve(SIZE_LEVEL),
        "morton": morton_curve(SIZE_LEVEL),
        "boustrophedon": boustrophedon_curve(2**SIZE_LEVEL),
    }


def test_curve_baseline_reproduction(benchmark, save_artifact):
    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)
    rows = []
    stats = {}
    for name, curve in curves.items():
        loc = analyze_curve(curve, nsegments=NSEG)
        cont = is_continuous_ordering(curve)
        stats[name] = (loc, cont)
        rows.append(
            [
                name,
                "yes" if cont else "NO",
                f"{loc.mean_bbox_aspect:.2f}",
                f"{loc.mean_surface_to_volume:.3f}",
                loc.max_neighbor_stretch,
            ]
        )
    save_artifact(
        "ablation_curve_baselines",
        format_table(
            ["ordering", "continuous", "bbox aspect", "surf/vol", "max stretch"],
            rows,
            title=f"Face-local orderings, {2**SIZE_LEVEL}x{2**SIZE_LEVEL}, {NSEG} segments",
        ),
    )
    hil, _ = stats["hilbert"]
    mor, mor_cont = stats["morton"]
    bou, bou_cont = stats["boustrophedon"]
    # Hilbert: continuous AND compact.
    assert stats["hilbert"][1]
    assert hil.mean_surface_to_volume <= mor.mean_surface_to_volume + 1e-9
    assert hil.mean_surface_to_volume < bou.mean_surface_to_volume
    # Morton: compact but discontinuous; boustrophedon: the reverse.
    assert not mor_cont
    assert bou_cont


def test_hilbert_vs_scanline_partition_quality(benchmark, save_artifact):
    """Cut the K=1536 cubed-sphere with the gid order (face-major
    scanline, i.e. the `block` method) vs the Hilbert curve: the curve
    should cut substantially less at moderate part counts."""
    from repro.cubesphere import cubed_sphere_mesh
    from repro.graphs import mesh_graph
    from repro.partition import block_partition, evaluate_partition, sfc_partition

    def run():
        mesh = cubed_sphere_mesh(16)
        graph = mesh_graph(mesh)
        out = {}
        for nparts in (24, 96, 384):
            sfc = evaluate_partition(graph, sfc_partition(16, nparts))
            blk = evaluate_partition(graph, block_partition(mesh.nelem, nparts))
            out[nparts] = (sfc, blk)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for nparts, (sfc, blk) in results.items():
        rows.append(
            [nparts, sfc.edgecut, blk.edgecut, f"{blk.edgecut / sfc.edgecut:.2f}x"]
        )
    save_artifact(
        "ablation_hilbert_vs_scanline",
        format_table(
            ["Nproc", "hilbert cut", "scanline cut", "ratio"],
            rows,
            title="Edgecut: Hilbert curve vs storage-order blocks, K=1536",
        ),
    )
    sfc24, blk24 = results[24]
    assert sfc24.edgecut < blk24.edgecut


@pytest.mark.parametrize("name", ["hilbert", "morton", "boustrophedon"])
def test_ordering_generation_speed(benchmark, name):
    gens = {
        "hilbert": lambda: hilbert_curve(SIZE_LEVEL),
        "morton": lambda: morton_curve(SIZE_LEVEL),
        "boustrophedon": lambda: boustrophedon_curve(2**SIZE_LEVEL),
    }
    curve = benchmark(gens[name])
    assert curve.size == 2**SIZE_LEVEL
