"""Figures 2-5 — curve construction, validated and benchmarked.

Regenerates the constructions the paper illustrates (Hilbert level 1-2,
level-1 m-Peano, the 36-cell level-1 Hilbert-Peano curve) as ASCII
artifacts, and benchmarks raw curve generation throughput up to
1024 x 1024 cells (the vectorized level-at-a-time expansion).
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table
from repro.sfc import analyze_curve, generate_curve


def test_fig2_to_fig5_reproduction(benchmark, save_artifact):
    benchmark.pedantic(
        lambda: [generate_curve(schedule=s) for s in ("H", "HH", "P", "PH")],
        rounds=1,
        iterations=1,
    )
    parts = []
    for title, schedule in [
        ("Figure 2a: level-1 Hilbert", "H"),
        ("Figure 2c: level-2 Hilbert", "HH"),
        ("Figure 4a: level-1 m-Peano", "P"),
        ("Figure 5: level-1 Hilbert-Peano (36 sub-domains)", "PH"),
    ]:
        c = generate_curve(schedule=schedule)
        parts.append(f"{title}\n{c.render()}")
        assert (c.step_lengths() == 1).all()
    save_artifact("fig02_05_curves", "\n\n".join(parts))
    assert len(generate_curve(schedule="PH")) == 36


def test_locality_summary_artifact(benchmark, save_artifact):
    locs = benchmark.pedantic(
        lambda: {
            s: analyze_curve(generate_curve(schedule=s))
            for s in ("HHHH", "PP", "PHH", "PPH")
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for schedule in ("HHHH", "PP", "PHH", "PPH"):
        c = generate_curve(schedule=schedule)
        loc = locs[schedule]
        rows.append(
            [
                schedule,
                c.size,
                f"{loc.mean_bbox_aspect:.2f}",
                f"{loc.mean_surface_to_volume:.2f}",
                loc.max_neighbor_stretch,
            ]
        )
    save_artifact(
        "curve_locality",
        format_table(
            ["schedule", "size", "bbox aspect", "surf/vol", "max stretch"],
            rows,
            title="Curve locality by family",
        ),
    )


@pytest.mark.parametrize("level", [6, 8, 10], ids=lambda n: f"2^{n}")
def test_hilbert_generation_speed(benchmark, level):
    from repro.sfc.generator import _expand

    coords = benchmark(_expand, "H" * level)
    assert len(coords) == 4**level


@pytest.mark.parametrize("schedule", ["PPP", "PPHH", "PPPHH"])
def test_mixed_generation_speed(benchmark, schedule):
    from repro.sfc.generator import _expand

    benchmark(_expand, schedule)
