"""Table 2 — partition statistics for K=1536 on 768 processors.

Regenerates the paper's Table 2 (LB(nelemd), LB(spcv), TCV, edgecut,
time per step for SFC/KWAY/TV/RB) and benchmarks each partitioner at
the paper's scale.

Paper-vs-measured notes (see EXPERIMENTS.md): with the default
shallow-water cost model (nlev=1) TCV is ~1 MB; the paper's 16.8 MB
corresponds to a multi-level configuration, reproduced here with
nlev=16, which scales TCV without changing any ranking.
"""

from __future__ import annotations

import pytest

from repro.cubesphere import cubed_sphere_mesh
from repro.experiments import render_table2, table2
from repro.graphs import mesh_graph
from repro.metis import part_graph
from repro.partition import sfc_partition
from repro.seam import SEAMCostModel

NE, NPROC = 16, 768


@pytest.fixture(scope="module")
def graph():
    return mesh_graph(cubed_sphere_mesh(NE))


def test_table2_reproduction(benchmark, save_artifact):
    rows = benchmark.pedantic(
        table2, kwargs={"ne": NE, "nproc": NPROC}, rounds=1, iterations=1
    )
    text = render_table2(rows, k=6 * NE * NE, nproc=NPROC)
    # Multi-level configuration matching the paper's TCV magnitude.
    rows16 = table2(ne=NE, nproc=NPROC, cost=SEAMCostModel(nlev=16))
    text += "\n\n" + render_table2(rows16, k=6 * NE * NE, nproc=NPROC).replace(
        "Partition statistics", "Partition statistics (nlev=16 cost model)"
    )
    save_artifact("table2", text)

    by = {r.method: r for r in rows}
    # Paper shape: SFC perfectly balanced and fastest.
    assert by["SFC"].lb_nelemd == 0.0
    assert by["SFC"].time_us == min(r.time_us for r in rows)
    # METIS methods imbalanced at 2 elements/processor.
    assert by["KWAY"].lb_nelemd > 0.2
    # KWAY minimizes edgecut.
    assert by["KWAY"].edgecut == min(r.edgecut for r in rows)
    # Paper's TV anomaly check: record whether TV beat KWAY on measured
    # TCV (the paper found it did not, "contradicting the expected
    # minimization property"); either way TV must be within noise.
    assert by["TV"].tcv_mbytes < 1.2 * by["KWAY"].tcv_mbytes
    # nlev=16 lands in the paper's TCV ballpark (16.8 MB for KWAY).
    by16 = {r.method: r for r in rows16}
    assert 10 < by16["KWAY"].tcv_mbytes < 25


def test_partition_speed_sfc(benchmark):
    benchmark(sfc_partition, NE, NPROC)


@pytest.mark.parametrize("method", ["rb", "kway", "tv"])
def test_partition_speed_metis(benchmark, graph, method):
    benchmark.pedantic(
        part_graph, args=(graph, NPROC, method), rounds=2, iterations=1
    )
