"""Table 1 — SEAM test resolutions and their SFC configurations.

Regenerates the paper's Table 1 (element counts, processor ranges,
Hilbert/m-Peano levels per resolution) and benchmarks global-curve
construction at each resolution, which is the setup cost a model pays
once per run.
"""

from __future__ import annotations

import pytest

from repro.cubesphere import build_curve, cubed_sphere_mesh
from repro.experiments import PAPER_RESOLUTIONS, format_table


def _table1_rows():
    rows = []
    for res in PAPER_RESOLUTIONS:
        nprocs = res.nprocs()
        rows.append(
            [
                res.k,
                f"1 to {nprocs[-1]}",
                res.ne,
                res.hilbert_level,
                res.peano_level,
            ]
        )
    return rows


def test_table1_reproduction(benchmark, save_artifact):
    rows = benchmark.pedantic(_table1_rows, rounds=1, iterations=1)
    text = format_table(
        ["K (# of elements)", "Nproc", "Ne", "Hilbert level", "m-Peano level"],
        rows,
        title="Table 1: SEAM test resolutions",
    )
    save_artifact("table1", text)
    # Paper values.
    assert rows[0][:1] + rows[0][2:] == [384, 8, 3, 0]
    assert rows[1][:1] + rows[1][2:] == [486, 9, 0, 2]
    assert rows[2][:1] + rows[2][2:] == [1536, 16, 4, 0]
    assert rows[3][:1] + rows[3][2:] == [1944, 18, 1, 2]


@pytest.mark.parametrize("res", PAPER_RESOLUTIONS, ids=lambda r: f"K{r.k}")
def test_curve_construction_speed(benchmark, res):
    mesh = cubed_sphere_mesh(res.ne)
    curve = benchmark(build_curve, mesh)
    assert len(curve) == res.k
