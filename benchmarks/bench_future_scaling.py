"""Paper future work — scaling beyond 768 processors (plus sensitivity).

Two studies the paper asks for but could not run:

* K=3456 (Ne=24) on a hypothetical 3456-processor P690-class cluster,
  down to 1 element per processor;
* sensitivity of the K=384 headline advantage to the (undocumented)
  network constants, swept over an order of magnitude.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.experiments.future_scaling import future_scaling_study
from repro.experiments.sensitivity import network_sensitivity


def test_future_scaling_reproduction(benchmark, save_artifact):
    points = benchmark.pedantic(
        future_scaling_study,
        kwargs={"ne": 24, "max_procs": 3456},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            p.nproc,
            p.elems_per_proc,
            f"{p.sfc_speedup:.0f}",
            f"{p.sfc_gflops:.0f}",
            f"{p.best_metis_speedup:.0f}",
            f"{p.advantage * 100:+.0f}%",
            f"{p.parallel_efficiency * 100:.0f}%",
        ]
        for p in points
    ]
    save_artifact(
        "future_scaling_k3456",
        format_table(
            [
                "Nproc",
                "elem/proc",
                "S(SFC)",
                "GF(SFC)",
                "S(best METIS)",
                "advantage",
                "SFC efficiency",
            ],
            rows,
            title="K=3456 beyond the 768-processor job limit (paper future work)",
        ),
    )
    # SFC stays ahead everywhere past 768 processors ...
    beyond = [p for p in points if p.nproc > 768]
    assert beyond, "sweep must exercise > 768 processors"
    for p in beyond:
        assert p.advantage > 0
    # ... and delivers a monotone-ish growing aggregate rate.
    gf = [p.sfc_gflops for p in points]
    assert gf[-1] == max(gf)


def test_network_sensitivity_reproduction(benchmark, save_artifact):
    points = benchmark.pedantic(
        network_sensitivity,
        kwargs={"ne": 8, "nproc": 384},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            f"{p.latency_scale:g}x",
            f"{p.bandwidth_scale:g}x",
            f"{p.sfc_speedup:.0f}",
            f"{p.best_metis_speedup:.0f}",
            f"{p.advantage * 100:+.0f}%",
        ]
        for p in points
    ]
    save_artifact(
        "network_sensitivity",
        format_table(
            ["latency", "bandwidth", "S(SFC)", "S(best METIS)", "advantage"],
            rows,
            title="SFC advantage vs network constants, K=384 on 384 procs",
        ),
    )
    # The qualitative claim (SFC >= best METIS) must hold across the
    # entire order-of-magnitude sweep; the percentage may vary freely.
    for p in points:
        assert p.advantage > -0.02
    advantages = [p.advantage for p in points]
    assert max(advantages) > 0.10  # and is substantial somewhere
