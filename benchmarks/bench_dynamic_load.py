#!/usr/bin/env python
"""Dynamic load-balancing benchmark: SFC repartitioning vs fresh METIS.

Drives the 100-step moving-storm weight trajectory (the ``storm``
scenario from :mod:`repro.scenarios`) at Ne=64 over 16 parts and
compares the two rebalancing strategies the repartition service can
choose between:

* **SFC re-cut** (:class:`~repro.partition.LoadTracker` on the
  streaming key path) — re-cut the fixed curve for each step's
  weights; elements only migrate between curve-adjacent ranks.
* **Fresh METIS** — run multilevel k-way from scratch on the same
  weights (sampled every ``--metis-every`` steps; consecutive fresh
  partitions share no history, so their diff is the migration a
  from-scratch rebalancer would force).  The element-connectivity
  CSR arrays are built once and only the vertex weights are swapped
  per sample.

Reports per-step load balance (``max/ideal``) and migration fraction
for SFC, the sampled METIS migration fractions, and writes everything
to ``benchmarks/results/bench_dynamic_load.json``.  Exits non-zero if
an acceptance gate fails:

* SFC keeps ``max_load <= (1 + --lb-slack) * ideal`` at every step
  (default slack 5%, the paper-style LB bar under weighted cuts);
* at every sampled step the SFC migration fraction is strictly below
  fresh METIS's.

Run ``python benchmarks/bench_dynamic_load.py`` for the full profile
or ``--ci`` for the reduced (Ne=16, 30-step) CI profile.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent / "src"))

RESULTS_PATH = HERE / "results" / "bench_dynamic_load.json"


def run_trajectory(
    ne: int,
    nparts: int,
    steps: int,
    metis_every: int,
    scenario: str,
) -> dict:
    """Run both strategies over the trajectory; return the report."""
    import numpy as np

    from repro.cubesphere import cubed_sphere_mesh
    from repro.graphs import CSRGraph, mesh_graph
    from repro.metis import part_graph
    from repro.partition import LoadTracker, migration_cost
    from repro.scenarios import scenario_weights

    nsteps_period = max(steps, 100)  # keep the storm moving per step

    def weights_at(step: int) -> np.ndarray:
        return scenario_weights(scenario, ne, step, nsteps=nsteps_period)

    # -- SFC: the streaming key path, nothing rebuilt per step --------
    tracker = LoadTracker(ne, nparts=nparts)
    t0 = perf_counter()
    for step in range(steps):
        tracker.update(weights_at(step))
    sfc_seconds = perf_counter() - t0
    sfc_steps = [
        {
            "step": step,
            "lb": entry["lb"],
            "max_over_ideal": entry["max_load"] / entry["mean_load"],
            "fraction_moved": entry["fraction_moved"],
        }
        for step, entry in enumerate(tracker.history)
    ]

    # -- fresh METIS at sampled steps: one CSR build, swapped weights -
    base = mesh_graph(cubed_sphere_mesh(ne))
    sample_steps = [s for s in range(metis_every, steps, metis_every)]

    def metis_partition(step: int):
        vw = np.maximum(np.round(weights_at(step)), 1).astype(np.int64)
        graph = CSRGraph(base.indptr, base.indices, base.eweights, vw)
        return part_graph(graph, nparts, "kway", seed=0)

    metis_samples = []
    t0 = perf_counter()
    for step in sample_steps:
        prev = metis_partition(step - 1)
        curr = metis_partition(step)
        w = weights_at(step)
        loads = np.bincount(curr.assignment, weights=w, minlength=nparts)
        metis_samples.append(
            {
                "step": step,
                "max_over_ideal": float(loads.max() / loads.mean()),
                "fraction_moved": migration_cost(prev, curr).fraction_moved,
                "sfc_fraction_moved": tracker.history[step]["fraction_moved"],
            }
        )
    metis_seconds = perf_counter() - t0

    fractions = [s["fraction_moved"] for s in sfc_steps[1:]]
    return {
        "config": {
            "ne": ne,
            "nparts": nparts,
            "steps": steps,
            "scenario": scenario,
            "metis_every": metis_every,
        },
        "sfc": {
            "seconds_total": sfc_seconds,
            "worst_max_over_ideal": max(s["max_over_ideal"] for s in sfc_steps),
            "mean_fraction_moved": float(np.mean(fractions)) if fractions else 0.0,
            "max_fraction_moved": float(np.max(fractions)) if fractions else 0.0,
            "steps": sfc_steps,
        },
        "metis": {
            "seconds_total": metis_seconds,
            "samples": metis_samples,
        },
    }


def check_gates(report: dict, lb_slack: float) -> list[str]:
    """The acceptance gates; returns failure messages (empty = pass)."""
    failures: list[str] = []
    worst = report["sfc"]["worst_max_over_ideal"]
    if worst > 1.0 + lb_slack:
        failures.append(
            f"SFC max/ideal {worst:.4f} exceeds {1.0 + lb_slack:.2f} "
            "(load balance outside the weighted-optimum slack)"
        )
    for sample in report["metis"]["samples"]:
        if sample["sfc_fraction_moved"] >= sample["fraction_moved"]:
            failures.append(
                f"step {sample['step']}: SFC moved "
                f"{sample['sfc_fraction_moved']:.3f}, not strictly below "
                f"fresh METIS's {sample['fraction_moved']:.3f}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ne", type=int, default=64)
    parser.add_argument("--nparts", type=int, default=16)
    parser.add_argument("--steps", type=int, default=100)
    parser.add_argument(
        "--metis-every", type=int, default=10,
        help="sample fresh METIS every N steps (default 10)",
    )
    parser.add_argument("--scenario", default="storm")
    parser.add_argument(
        "--lb-slack", type=float, default=0.05,
        help="allowed max_load excess over ideal (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--ci", action="store_true",
        help="reduced profile (Ne=16, 30 steps) for the CI perf job",
    )
    parser.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = parser.parse_args(argv)
    if args.ci:
        args.ne, args.steps = 16, 30

    report = run_trajectory(
        args.ne, args.nparts, args.steps, args.metis_every, args.scenario
    )
    failures = check_gates(report, args.lb_slack)
    report["gates"] = {"lb_slack": args.lb_slack, "failures": failures}

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    cfg = report["config"]
    print(
        f"storm trajectory: ne={cfg['ne']} nparts={cfg['nparts']} "
        f"steps={cfg['steps']}"
    )
    print(
        f"  SFC   worst max/ideal {report['sfc']['worst_max_over_ideal']:.4f}  "
        f"mean moved {report['sfc']['mean_fraction_moved']:.3f}  "
        f"max moved {report['sfc']['max_fraction_moved']:.3f}  "
        f"({report['sfc']['seconds_total']:.2f}s total)"
    )
    for sample in report["metis"]["samples"]:
        print(
            f"  step {sample['step']:3d}: METIS moved "
            f"{sample['fraction_moved']:.3f} vs SFC "
            f"{sample['sfc_fraction_moved']:.3f}"
        )
    print(f"wrote {args.out}")
    if failures:
        print("FAILED acceptance gates:")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("acceptance gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
