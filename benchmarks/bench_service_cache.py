"""Partition service cache benchmark — cold vs. warm throughput.

Serves the same K=1536 (Ne=16) sweep twice through the engine:

* **cold** — empty cache directory, every request computed (in
  parallel worker processes);
* **warm** — a fresh engine over the now-populated disk store, with an
  empty memory tier, so every request is a disk hit.

The acceptance bar for the serving subsystem: the warm pass answers
>= 95% of requests from cache and is >= 5x faster end-to-end.

A second benchmark measures the staged pipeline's intra-batch reuse:
a cold batch sweeping many methods at one ``ne`` must build the mesh
and the element graph exactly once, with every other method hitting
the per-process stage caches.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.partition.pipeline import clear_stage_caches, stage_cache_stats
from repro.report import format_table
from repro.service import PartitionCache, PartitionEngine, PartitionRequest

NE = 16  # K = 1536, the paper's largest Hilbert resolution
METHODS = ("sfc", "rb", "kway", "tv")
NPROCS = (24, 48, 96, 192, 384)


def sweep_requests() -> list[PartitionRequest]:
    return [
        PartitionRequest(ne=NE, nparts=nparts, method=method)
        for method in METHODS
        for nparts in NPROCS
    ]


def serve(cache_dir) -> tuple[PartitionEngine, list, float]:
    engine = PartitionEngine(
        PartitionCache(cache_dir=cache_dir),
        jobs=min(4, os.cpu_count() or 1),
    )
    start = perf_counter()
    responses = engine.run(sweep_requests())
    return engine, responses, perf_counter() - start


def test_service_cache_throughput(tmp_path, save_artifact):
    cache_dir = tmp_path / "cache"
    cold_engine, cold_responses, cold_s = serve(cache_dir)
    warm_engine, warm_responses, warm_s = serve(cache_dir)

    n = len(cold_responses)
    rows = [
        ["cold", n, cold_engine.stats.count("computed"),
         f"{cold_engine.stats.hit_rate:.2f}", f"{cold_s:.3f}", f"{n / cold_s:.1f}"],
        ["warm", n, warm_engine.stats.count("computed"),
         f"{warm_engine.stats.hit_rate:.2f}", f"{warm_s:.3f}", f"{n / warm_s:.1f}"],
        ["speedup", "", "", "", f"{cold_s / warm_s:.1f}x", ""],
    ]
    text = format_table(
        ["pass", "requests", "computed", "hit_rate", "wall_s", "req/s"],
        rows,
        title=f"Partition service cache, K={6 * NE * NE} sweep "
        f"({len(METHODS)} methods x {len(NPROCS)} nprocs)",
    )
    save_artifact("service_cache", text)

    # Identical answers either way.
    for a, b in zip(cold_responses, warm_responses):
        assert (a.assignment == b.assignment).all()
        assert a.metrics == b.metrics
    # Acceptance: warm pass >= 95% hits and >= 5x lower wall time.
    assert warm_engine.stats.hit_rate >= 0.95
    assert cold_s / warm_s >= 5.0
    cold_engine.close()
    warm_engine.close()


def test_stage_cache_reuse_across_methods(save_artifact):
    """One mesh + one graph serve every method of an equal-``ne`` batch.

    Runs in-process (jobs=1) so the per-process stage caches are
    observable; with pool workers each process keeps its own caches.
    """
    clear_stage_caches()
    requests = [
        PartitionRequest(ne=NE, nparts=nparts, method=method)
        for method in METHODS
        for nparts in (24, 96)
    ]
    start = perf_counter()
    with PartitionEngine(jobs=1) as engine:
        engine.run(requests)
    wall_s = perf_counter() - start

    stats = stage_cache_stats()
    rows = [
        [stage, s["hits"], s["misses"], s["entries"]]
        for stage, s in stats.items()
    ]
    rows.append(["(batch)", len(requests), "", f"{wall_s:.3f}s"])
    text = format_table(
        ["stage", "hits", "misses", "entries"],
        rows,
        title=f"Stage-cache reuse, {len(requests)} requests at ne={NE}",
    )
    save_artifact("stage_cache_reuse", text)

    # Mesh and graph computed once; every other lookup (one per request
    # for evaluation, plus one per graph-consuming builder) is a hit.
    assert stats["mesh"]["misses"] == 1
    assert stats["graph"]["misses"] == 1
    assert stats["graph"]["hits"] >= len(requests) - 1
