"""Partition service cache benchmark — cold vs. warm throughput.

Serves the same K=1536 (Ne=16) sweep twice through the engine:

* **cold** — empty cache directory, every request computed (in
  parallel worker processes);
* **warm** — a fresh engine over the now-populated disk store, with an
  empty memory tier, so every request is a disk hit.

The acceptance bar for the serving subsystem: the warm pass answers
>= 95% of requests from cache and is >= 5x faster end-to-end.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.experiments import format_table
from repro.service import PartitionCache, PartitionEngine, PartitionRequest

NE = 16  # K = 1536, the paper's largest Hilbert resolution
METHODS = ("sfc", "rb", "kway", "tv")
NPROCS = (24, 48, 96, 192, 384)


def sweep_requests() -> list[PartitionRequest]:
    return [
        PartitionRequest(ne=NE, nparts=nparts, method=method)
        for method in METHODS
        for nparts in NPROCS
    ]


def serve(cache_dir) -> tuple[PartitionEngine, list, float]:
    engine = PartitionEngine(
        PartitionCache(cache_dir=cache_dir),
        jobs=min(4, os.cpu_count() or 1),
    )
    start = perf_counter()
    responses = engine.run(sweep_requests())
    return engine, responses, perf_counter() - start


def test_service_cache_throughput(tmp_path, save_artifact):
    cache_dir = tmp_path / "cache"
    cold_engine, cold_responses, cold_s = serve(cache_dir)
    warm_engine, warm_responses, warm_s = serve(cache_dir)

    n = len(cold_responses)
    rows = [
        ["cold", n, cold_engine.stats.count("computed"),
         f"{cold_engine.stats.hit_rate:.2f}", f"{cold_s:.3f}", f"{n / cold_s:.1f}"],
        ["warm", n, warm_engine.stats.count("computed"),
         f"{warm_engine.stats.hit_rate:.2f}", f"{warm_s:.3f}", f"{n / warm_s:.1f}"],
        ["speedup", "", "", "", f"{cold_s / warm_s:.1f}x", ""],
    ]
    text = format_table(
        ["pass", "requests", "computed", "hit_rate", "wall_s", "req/s"],
        rows,
        title=f"Partition service cache, K={6 * NE * NE} sweep "
        f"({len(METHODS)} methods x {len(NPROCS)} nprocs)",
    )
    save_artifact("service_cache", text)

    # Identical answers either way.
    for a, b in zip(cold_responses, warm_responses):
        assert (a.assignment == b.assignment).all()
        assert a.metrics == b.metrics
    # Acceptance: warm pass >= 95% hits and >= 5x lower wall time.
    assert warm_engine.stats.hit_rate >= 0.95
    assert cold_s / warm_s >= 5.0
    cold_engine.close()
    warm_engine.close()
