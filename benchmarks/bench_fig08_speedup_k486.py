"""Figure 8 — speedup vs single processor, K=486 (m-Peano curve).

Validates "the effectiveness of the m-Peano curve for size 3^m
problems": the sweep uses the pure meandering-Peano curve (Ne = 9 =
3^2) and must show the same shape as Figure 7 — parity at small
counts, SFC ahead above 50 processors.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _sweep import sweep_and_render

from repro.experiments import resolution_by_k, run_method

NE = 9


def test_fig08_reproduction(benchmark, save_artifact, shared_engine):
    assert resolution_by_k(486).curve_family == "m-peano"
    text, data = benchmark.pedantic(
        sweep_and_render,
        args=(NE, "speedup", "Figure 8: speedup, K=486, SFC (m-Peano) vs best METIS"),
        kwargs={"engine": shared_engine},
        rounds=1,
        iterations=1,
    )
    save_artifact("fig08_speedup_k486", text)
    nprocs, sfc, metis = data["nprocs"], data["sfc"], data["metis"]
    for n, a, b in zip(nprocs, sfc, metis):
        if n <= 50:
            assert a > 0.9 * b
        if n > 50:
            assert a >= b, f"SFC should not lose above 50 procs (Nproc={n})"
    # Paper: 51% at 486 processors; assert a clear advantage.
    i486 = nprocs.index(486)
    assert sfc[i486] / metis[i486] - 1 > 0.05


def test_fig08_single_point_speed(benchmark):
    benchmark(run_method, NE, 162, "sfc")
