"""Ablation — all partitioning methods across all paper resolutions.

Extends the paper's SFC-vs-METIS comparison with the geometric (RCB),
block, and random baselines, and with the flat-network counterfactual
machine that isolates how much of the SFC advantage comes from SMP
rank locality versus load balance.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ALL_METHODS,
    PAPER_RESOLUTIONS,
    format_table,
    network_ablation,
    run_method,
)


def _method_matrix():
    out = []
    for res in PAPER_RESOLUTIONS[:2]:  # K=384, K=486 (fast paper cases)
        nproc = res.nprocs()[-1] // 4  # 4 elements per processor
        for method in ALL_METHODS:
            out.append((res, nproc, method, run_method(res.ne, nproc, method)))
    return out


def test_method_matrix_reproduction(benchmark, save_artifact):
    rows = []
    for res, nproc, method, r in benchmark.pedantic(
        _method_matrix, rounds=1, iterations=1
    ):
        rows.append(
            [
                res.k,
                nproc,
                method,
                f"{r.quality.lb_nelemd:.3f}",
                r.quality.edgecut,
                f"{r.speedup:.1f}",
            ]
        )
    text = format_table(
        ["K", "Nproc", "method", "LB(nelemd)", "edgecut", "speedup"],
        rows,
        title="All methods at 4 elements/processor",
    )
    save_artifact("ablation_methods", text)
    # SFC beats random and block everywhere.
    by = {(r[0], r[2]): float(r[5]) for r in rows}
    for res in PAPER_RESOLUTIONS[:2]:
        assert by[(res.k, "sfc")] > by[(res.k, "random")]
        assert by[(res.k, "sfc")] >= by[(res.k, "block")]


def test_network_ablation_reproduction(benchmark, save_artifact):
    out = benchmark.pedantic(
        network_ablation, kwargs={"ne": 8, "nproc": 384}, rounds=1, iterations=1
    )
    rows = []
    for method, res in out.items():
        rows.append(
            [
                method,
                f"{res['p690'].speedup:.1f}",
                f"{res['flat'].speedup:.1f}",
                f"{(res['p690'].speedup / res['flat'].speedup - 1) * 100:+.0f}%",
            ]
        )
    text = format_table(
        ["method", "S(P690)", "S(flat net)", "hierarchy benefit"],
        rows,
        title="Network-hierarchy ablation, K=384 on 384 procs",
    )
    save_artifact("ablation_network", text)
    # The hierarchical network helps the locality-ordered SFC ranks at
    # least as much as any METIS numbering.
    benefit = {
        m: out[m]["p690"].speedup / out[m]["flat"].speedup for m in out
    }
    assert benefit["sfc"] >= max(benefit[m] for m in ("rb", "kway", "tv")) - 0.02


@pytest.mark.parametrize("method", ["sfc", "rb", "kway", "tv", "rcb"])
def test_method_speed_k384(benchmark, method):
    benchmark.pedantic(run_method, args=(8, 96, method), rounds=3, iterations=1)
