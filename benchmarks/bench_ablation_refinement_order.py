"""Ablation — refinement-order impact on the Hilbert-Peano curve.

The paper's future work: "The impact that refinement order has on the
Hilbert-Peano curve should also be explored."  This bench sweeps every
distinct Hilbert/Peano nesting order at Ne=18 (the paper's K=1944
configuration) and at Ne=12, recording curve locality, partition
quality, and simulated performance per schedule.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table, refinement_order_study
from repro.sfc import all_schedules


@pytest.mark.parametrize("ne,nproc", [(12, 216), (18, 486)], ids=["K864", "K1944"])
def test_refinement_order_reproduction(benchmark, save_artifact, ne, nproc):
    results = benchmark.pedantic(
        refinement_order_study,
        kwargs={"ne": ne, "nproc": nproc},
        rounds=1,
        iterations=1,
    )
    assert [r.schedule for r in results] == all_schedules(ne)
    rows = []
    for r in results:
        rows.append(
            [
                r.schedule,
                f"{r.locality.mean_bbox_aspect:.3f}",
                f"{r.locality.mean_surface_to_volume:.3f}",
                f"{r.sfc_result.quality.lb_spcv:.3f}",
                r.sfc_result.quality.edgecut,
                f"{r.sfc_result.speedup:.1f}",
            ]
        )
    save_artifact(
        f"ablation_refinement_order_k{6 * ne * ne}",
        format_table(
            ["schedule", "bbox aspect", "surf/vol", "LB(spcv)", "edgecut", "speedup"],
            rows,
            title=f"Refinement-order ablation, Ne={ne}, Nproc={nproc}",
        ),
    )
    # Every ordering keeps perfect compute balance (curve property).
    for r in results:
        assert r.sfc_result.quality.lb_nelemd == 0.0
    # Orderings genuinely differ in locality or cut.
    cuts = {r.sfc_result.quality.edgecut for r in results}
    aspects = {round(r.locality.mean_bbox_aspect, 6) for r in results}
    assert len(cuts) > 1 or len(aspects) > 1


def test_refinement_order_speed(benchmark):
    benchmark(refinement_order_study, 12, 72)
