"""Benchmark-suite fixtures: artifact saving and shared graphs.

Every bench regenerates one table or figure of the paper, times the
partitioning work with pytest-benchmark, and writes the reproduced
table/series to ``benchmarks/results/<name>.txt`` so the reproduction
artifacts survive the run (pytest captures stdout).

The suite also emits machine-readable timings: at session end, every
bench module that ran gets ``benchmarks/results/<module>.json`` with
the pytest-benchmark statistics (min/mean/stddev/rounds per test) — the
input of the perf-regression harness (``benchmarks/perf_smoke.py`` and
the CI perf-smoke job).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_artifact():
    """Write a named reproduction artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str, data: dict | None = None) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.data.json").write_text(
                json.dumps(
                    {"schema": 1, **data}, indent=2, sort_keys=True, default=str
                )
                + "\n"
            )
        print(f"\n[{name}] -> {path}\n{text}")
        return path

    return _save


@pytest.fixture(scope="session")
def shared_engine():
    """One partition engine for the whole bench session.

    The figure sweeps (fig07-fig10) all fan out over a process pool;
    sharing a single engine means one pool (forked once, reused for
    every batch) and one in-memory cache across the whole suite.
    """
    import os

    from repro.service import PartitionEngine

    engine = PartitionEngine(jobs=min(4, os.cpu_count() or 1))
    yield engine
    engine.close()


def _timing_entry(bench) -> dict:
    """One benchmark's stats, flattened for the results JSON."""
    entry = {
        "name": bench.name,
        "fullname": bench.fullname,
        "group": bench.group,
        "params": bench.params,
    }
    stats = getattr(bench, "stats", None)
    if stats is not None:
        for field in ("min", "max", "mean", "stddev", "median", "rounds"):
            value = getattr(stats, field, None)
            if value is not None:
                entry[field] = value
    return entry


def pytest_sessionfinish(session, exitstatus):
    """Write per-module timing JSON for every bench that ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_module: dict[str, list[dict]] = {}
    for bench in bench_session.benchmarks:
        module = Path(bench.fullname.split("::", 1)[0]).stem
        try:
            by_module.setdefault(module, []).append(_timing_entry(bench))
        except Exception:  # noqa: BLE001 - never fail the run on telemetry
            continue
    RESULTS_DIR.mkdir(exist_ok=True)
    for module, entries in by_module.items():
        payload = {"schema": 1, "module": module, "benchmarks": entries}
        (RESULTS_DIR / f"{module}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        )
