"""Benchmark-suite fixtures: artifact saving and shared graphs.

Every bench regenerates one table or figure of the paper, times the
partitioning work with pytest-benchmark, and writes the reproduced
table/series to ``benchmarks/results/<name>.txt`` so the reproduction
artifacts survive the run (pytest captures stdout).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_artifact():
    """Write a named reproduction artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}] -> {path}\n{text}")
        return path

    return _save
