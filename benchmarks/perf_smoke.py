#!/usr/bin/env python
"""Perf-regression smoke harness (small K, suitable for CI).

Times the kernelized hot paths at K=96 — the three METIS partitioners,
the SFC partitioner, the halo-schedule build, a partitioned DSS apply,
the fused DSS apply, a shallow-water RK3 step, and the batched
geometry build — and compares each against the committed baseline
(``benchmarks/perf_baseline.json``).  Any timing more than ``--tolerance``
times its baseline (default 3x, loose enough for machine-to-machine
variation but tight enough to catch a de-kernelized hot path) fails the
run with a per-metric report.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                  # check
    PYTHONPATH=src python benchmarks/perf_smoke.py --write-baseline # re-pin

Always writes the measured timings to
``benchmarks/results/perf_smoke.json`` (the CI job uploads that
directory as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent / "src"))

NE = 4  # K = 6 * NE^2 = 96 elements
NPARTS = 48
BASELINE_PATH = HERE / "perf_baseline.json"
RESULTS_PATH = HERE / "results" / "perf_smoke.json"


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def measure() -> dict[str, float]:
    """Best-of-5 wall seconds for each smoke metric."""
    import numpy as np

    from repro.cubesphere import cubed_sphere_mesh
    from repro.graphs import mesh_graph
    from repro.metis import part_graph
    from repro.partition import sfc_partition
    from repro.seam import PartitionedDSS, build_geometry, build_point_map
    from repro.seam.dss import build_halo_schedule

    graph = mesh_graph(cubed_sphere_mesh(NE))
    timings: dict[str, float] = {}
    for method in ("rb", "kway", "tv"):
        part_graph(graph, NPARTS, method)  # warm (kernel build, caches)
        timings[f"metis_{method}"] = _best_of(
            lambda m=method: part_graph(graph, NPARTS, m)
        )
    timings["sfc"] = _best_of(lambda: sfc_partition(NE, NPARTS))

    # Weighted cut: greedy prefix sums + the iterative correction pass.
    storm = np.exp(np.random.default_rng(0).normal(0.0, 1.0, 6 * NE * NE)) + 0.1
    sfc_partition(NE, NPARTS, weights=storm)  # warm
    timings["weighted_cut"] = _best_of(
        lambda: sfc_partition(NE, NPARTS, weights=storm)
    )

    # Raw keying rates behind the streaming cut (uint64 key path).
    from repro.cubesphere.curve import element_keys
    from repro.sfc.keys import morton_keys

    gids = np.arange(6 * NE * NE, dtype=np.int64)
    iy, ix = np.divmod(gids % (NE * NE), NE)
    element_keys(NE, gids=gids)  # warm (chain + schedule tables)
    inner = 100

    def sfc_key_loop() -> None:
        for _ in range(inner):
            element_keys(NE, gids=gids)

    timings["sfc_key"] = _best_of(sfc_key_loop) / inner

    def morton_key_loop() -> None:
        for _ in range(inner):
            morton_keys(ix, iy, NE, check=False)

    timings["morton_key"] = _best_of(morton_key_loop) / inner
    geom = build_geometry(NE, 4)
    pmap = build_point_map(geom)
    part = sfc_partition(NE, NPARTS)
    build_halo_schedule(pmap, part)
    timings["halo_schedule"] = _best_of(lambda: build_halo_schedule(pmap, part))
    pdss = PartitionedDSS(geom, part, point_map=pmap)
    q = np.random.default_rng(0).standard_normal(pdss.local_mass.shape)
    pdss.apply(q)
    timings["pdss_apply"] = _best_of(lambda: pdss.apply(q))

    # Batched SEAM engine metrics (np=8, SEAM's polynomial order).
    from repro.seam import ShallowWaterSolver, williamson_tc2
    from repro.seam.dss import DSSOperator
    from repro.seam.element import _build_grid_geometry

    geom8 = build_geometry(NE, 8)
    dss = DSSOperator(geom8)
    vec = np.random.default_rng(1).standard_normal((geom8.nelem, 8, 8, 3))
    out = np.empty_like(vec)
    dss.apply(vec, out=out)  # warm (shape plan, scratch)
    inner = 200

    def dss_loop() -> None:
        for _ in range(inner):
            dss.apply(vec, out=out)

    timings["dss_apply"] = _best_of(dss_loop) / inner

    solver = ShallowWaterSolver(geom8, dss=dss)
    state = williamson_tc2(geom8)
    dt = solver.stable_dt(state, 0.4)
    solver.step(state, dt)  # warm

    def step_loop() -> None:
        for _ in range(5):
            solver.step(state, dt)

    timings["sw_step"] = _best_of(step_loop) / 5

    _build_grid_geometry(NE, 8)  # warm (allocator free lists)
    timings["geometry_build"] = _best_of(lambda: _build_grid_geometry(NE, 8))

    timings["server_warm_hit"] = _measure_server_warm_hit()
    return timings


def _measure_server_warm_hit() -> float:
    """Warm-cache request latency through the HTTP serving path.

    One keep-alive client against an in-process server on an ephemeral
    port, repeating a cached ``POST /partition``: parse + route + cache
    hit + serialize, never touching the worker pool.  Guards the
    event-loop side of the server against regressions the engine-level
    benches can't see.
    """
    import asyncio

    from repro.server import Connection, PartitionServer
    from repro.service import PartitionEngine

    async def run() -> float:
        async with PartitionServer(PartitionEngine()) as server:
            host, port = server.address
            async with await Connection.open(host, port) as conn:
                payload = {"ne": NE, "nparts": NPARTS}
                first = await conn.post_json("/partition", payload)
                assert first.status == 200  # compute once, cache it
                inner = 50
                best = float("inf")
                for _ in range(5):
                    t0 = perf_counter()
                    for _ in range(inner):
                        resp = await conn.post_json("/partition", payload)
                        assert resp.status == 200
                    best = min(best, (perf_counter() - t0) / inner)
                return best

    return asyncio.run(run())


#: Telemetry-disabled overhead budget: the cost of the no-op
#: instrumentation calls during one ``part_graph`` must stay under
#: this fraction of the partitioner's own runtime.
OVERHEAD_BUDGET = 0.02

#: Observability (identity bookkeeping + disabled logging) budget per
#: warm hit.  The identity ops cost ~5-6 us/request regardless of how
#: fast the serving path gets, so this fraction is looser than the
#: telemetry budget: at the current ~0.25 ms warm-hit latency the fixed
#: cost alone is ~2.3%, and a faster server must not read as a
#: regression.
OBSERVABILITY_BUDGET = 0.04


def measure_telemetry_overhead(metis_rb_seconds: float) -> dict[str, float]:
    """Estimated disabled-telemetry overhead on ``part_graph`` at K=96.

    With no collector active every instrumentation point costs one
    module-global read plus a shared no-op context manager.  Count the
    instrumentation events of one traced rb partition, price one
    disabled call, and express their product as a fraction of the
    measured ``metis_rb`` time.
    """
    from repro.cubesphere import cubed_sphere_mesh
    from repro.graphs import mesh_graph
    from repro.metis import part_graph
    from repro.telemetry import span, telemetry_session

    graph = mesh_graph(cubed_sphere_mesh(NE))
    part_graph(graph, NPARTS, "rb")  # warm
    with telemetry_session() as session:
        part_graph(graph, NPARTS, "rb")
    events = len(session.tracer.spans)

    n = 100_000
    def noop_loop() -> None:
        for _ in range(n):
            with span("overhead_probe", "bench"):
                pass

    noop_loop()  # warm
    per_call = _best_of(noop_loop, repeats=3) / n
    return {
        "noop_span_ns": 1e9 * per_call,
        "events_per_part_graph": events,
        "overhead_fraction": events * per_call / metis_rb_seconds,
    }


def _count_log_events_per_warm_request() -> float:
    """Log records one warm cache-hit request emits, counted live.

    Serves ten warm hits through a real in-process server with a
    capture buffer installed, so the count tracks the actual call
    sites (today: one ``access`` record per request) instead of a
    hard-coded constant.
    """
    import asyncio

    from repro.server import Connection, PartitionServer
    from repro.service import PartitionEngine
    from repro.telemetry.logs import capture_records

    async def run() -> float:
        async with PartitionServer(PartitionEngine()) as server:
            host, port = server.address
            async with await Connection.open(host, port) as conn:
                payload = {"ne": NE, "nparts": NPARTS}
                first = await conn.post_json("/partition", payload)
                assert first.status == 200
                with capture_records() as records:
                    for _ in range(10):
                        resp = await conn.post_json("/partition", payload)
                        assert resp.status == 200
                return len(records) / 10

    return asyncio.run(run())


def measure_observability_overhead(
    server_warm_hit_seconds: float,
) -> dict[str, float]:
    """Disabled-cost of the request-observability layer per warm hit.

    Two components, priced separately and summed:

    * the structured-logging no-op — count the ``log_event`` calls one
      warm request actually makes and price one disabled call (no sink,
      no capture: a module-global read and return);
    * the always-on identity bookkeeping — traceparent parse, context
      enter/exit, SLO record, ring append — priced by a micro-loop of
      exactly those operations.

    Their sum as a fraction of the measured warm-hit latency is the
    ``observability_overhead`` gate (budget:
    ``OBSERVABILITY_BUDGET``).
    """
    from collections import deque

    from repro.telemetry import (
        RequestContext,
        SLOTracker,
        log_event,
        parse_traceparent,
        request_context,
    )

    events = _count_log_events_per_warm_request()

    n = 100_000

    def disabled_log_loop() -> None:
        for _ in range(n):
            log_event("overhead_probe", status=200, ms=0.1, source="memory")

    disabled_log_loop()  # warm
    per_log = _best_of(disabled_log_loop, repeats=3) / n

    slo = SLOTracker()
    ring: deque = deque(maxlen=128)
    header = RequestContext.new().traceparent()
    m = 20_000

    def identity_loop() -> None:
        for _ in range(m):
            ctx = parse_traceparent(header) or RequestContext.new()
            with request_context(ctx):
                pass
            slo.record(200, 0.001)
            ring.append((ctx.request_id, ctx.trace_id, 200, 0.001))

    identity_loop()  # warm
    per_identity = _best_of(identity_loop, repeats=3) / m

    per_request = events * per_log + per_identity
    return {
        "noop_log_event_ns": 1e9 * per_log,
        "log_events_per_request": events,
        "identity_ops_ns": 1e9 * per_identity,
        "overhead_fraction": per_request / server_warm_hit_seconds,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the measured timings to {BASELINE_PATH.name} and exit",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="fail when a timing exceeds tolerance x baseline (default 3)",
    )
    args = parser.parse_args(argv)

    timings = measure()
    overhead = measure_telemetry_overhead(timings["metis_rb"])
    obs_overhead = measure_observability_overhead(timings["server_warm_hit"])
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "schema": 1,
                "k": 6 * NE * NE,
                "nparts": NPARTS,
                "seconds": timings,
                "telemetry_overhead": overhead,
                "observability_overhead": obs_overhead,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {RESULTS_PATH}")

    if args.write_baseline:
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "k": 6 * NE * NE,
                    "nparts": NPARTS,
                    "seconds": timings,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --write-baseline")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())["seconds"]
    failures: list[str] = []
    for name, seconds in sorted(timings.items()):
        base = baseline.get(name)
        if base is None:
            print(f"{name:20s} {1e3 * seconds:8.2f} ms  (no baseline)")
            continue
        ratio = seconds / base if base > 0 else float("inf")
        verdict = "ok" if ratio <= args.tolerance else "REGRESSION"
        print(
            f"{name:20s} {1e3 * seconds:8.2f} ms  baseline "
            f"{1e3 * base:8.2f} ms  x{ratio:5.2f}  {verdict}"
        )
        if ratio > args.tolerance:
            failures.append(name)
    frac = overhead["overhead_fraction"]
    verdict = "ok" if frac <= OVERHEAD_BUDGET else "REGRESSION"
    print(
        f"{'telemetry_overhead':20s} {100 * frac:8.3f} %   budget    "
        f"{100 * OVERHEAD_BUDGET:8.3f} %          {verdict}  "
        f"({overhead['noop_span_ns']:.0f} ns/call x "
        f"{overhead['events_per_part_graph']:.0f} events)"
    )
    if frac > OVERHEAD_BUDGET:
        failures.append("telemetry_overhead")
    obs_frac = obs_overhead["overhead_fraction"]
    verdict = "ok" if obs_frac <= OBSERVABILITY_BUDGET else "REGRESSION"
    print(
        f"{'observability_overhead':20s} {100 * obs_frac:6.3f} %   budget    "
        f"{100 * OBSERVABILITY_BUDGET:8.3f} %          {verdict}  "
        f"({obs_overhead['noop_log_event_ns']:.0f} ns/log x "
        f"{obs_overhead['log_events_per_request']:.1f} events + "
        f"{obs_overhead['identity_ops_ns']:.0f} ns identity)"
    )
    if obs_frac > OBSERVABILITY_BUDGET:
        failures.append("observability_overhead")
    if failures:
        print(
            f"FAIL: {len(failures)} metric(s) slower than "
            f"{args.tolerance:g}x baseline: {', '.join(failures)}"
        )
        return 1
    print("perf smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
