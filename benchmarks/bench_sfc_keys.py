#!/usr/bin/env python
"""Keying vs. materialization: SFC partitioning at Ne >= 1024.

The paper partitions at most K = 1944 elements, where materializing the
global curve (mesh + coords + order + position) is free.  The keyed
path (:mod:`repro.sfc.keys`) is built for resolutions three orders of
magnitude past that; this bench quantifies the two claims behind it:

1. **Memory** — ``sfc_partition`` (chunked uint64 keying) partitions a
   full cubed-sphere at each Ne with peak RSS that stays O(chunk) while
   the materialized ``partition_curve(cubed_sphere_curve(ne), ...)``
   path grows O(K).  Each measurement runs in its own subprocess so
   ``ru_maxrss`` is attributable.
2. **Throughput** — cells keyed per second for each curve family
   (Hilbert, Peano, Hilbert-Peano, Morton) at multi-million K.

Writes ``benchmarks/results/bench_sfc_keys.json`` and exits non-zero
when an acceptance check fails:

* keyed and materialized assignments are bit-identical (checked at the
  smallest Ne of the sweep);
* at the largest common Ne of a full run (>= 1024), keyed peak RSS is
  >= 10x below the materialized path's;
* Hilbert keying sustains >= 1e7 cells/s (C kernels; the NumPy
  fallback is exempt).

Run ``PYTHONPATH=src python benchmarks/bench_sfc_keys.py`` for the
full sweep (Ne up to 1024, K = 6.3M; the materialized side needs
several GB and a few minutes) or ``--ci`` for the small-Ne profile.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
from pathlib import Path
from time import perf_counter

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent / "src"))

RESULTS_PATH = HERE / "results" / "bench_sfc_keys.json"

FULL_NES = (96, 192, 384, 768, 1024)
CI_NES = (24, 48, 96)
#: The materialized path at Ne=1024 peaks around 9 GB; keep a guard so
#: the bench degrades loudly, not with an OOM kill.
NPARTS = 3072

#: Throughput cases: (label, ne, schedule or None for Morton).
FULL_THROUGHPUT = (
    ("hilbert", 1024, "H" * 10),
    ("peano", 729, "P" * 6),
    ("hilbert_peano", 972, None),  # default schedule: PPPPPHH
    ("morton", 1024, "morton"),
)
CI_THROUGHPUT = (
    ("hilbert", 64, "H" * 6),
    ("peano", 81, "P" * 4),
    ("hilbert_peano", 96, None),
    ("morton", 64, "morton"),
)

MIN_CELLS_PER_S = 1e7
MIN_RSS_RATIO = 10.0


def _peak_rss_bytes() -> int:
    # ru_maxrss is KiB on Linux, bytes on macOS.
    scale = 1024 if sys.platform != "darwin" else 1
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale


def child_partition(path: str, ne: int, nparts: int) -> dict:
    """One partition in this process; peak RSS is attributable to it."""
    from repro.cubesphere.curve import cubed_sphere_curve
    from repro.partition.sfc import partition_curve, sfc_partition

    t0 = perf_counter()
    if path == "keyed":
        part = sfc_partition(ne, nparts)
    else:
        part = partition_curve(cubed_sphere_curve(ne), nparts)
    elapsed = perf_counter() - t0
    k = 6 * ne * ne
    return {
        "path": path,
        "ne": ne,
        "k": k,
        "nparts": nparts,
        "seconds": elapsed,
        "cells_per_s": k / elapsed,
        "peak_rss_bytes": _peak_rss_bytes(),
        "checksum": int(part.assignment.astype("int64").sum()),
    }


def child_throughput(label: str, ne: int, schedule: str | None) -> dict:
    """Best-of-3 keying rate over every element of the Ne mesh."""
    import numpy as np

    from repro.cubesphere.curve import element_keys
    from repro.sfc.keys import morton_keys

    k = 6 * ne * ne
    gids = np.arange(k, dtype=np.int64)
    if label == "morton":
        n2 = ne * ne
        face, rem = np.divmod(gids, n2)
        iy, ix = np.divmod(rem, ne)

        def run() -> None:
            morton_keys(ix, iy, ne, check=False)
    else:

        def run() -> None:
            element_keys(ne, schedule, gids=gids)

    run()  # warm (tables, chain, allocator)
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        run()
        best = min(best, perf_counter() - t0)
    return {
        "curve": label,
        "ne": ne,
        "k": k,
        "seconds": best,
        "cells_per_s": k / best,
    }


def _spawn(argv: list[str]) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(HERE.parent / "src")
    proc = subprocess.run(
        [sys.executable, str(HERE / "bench_sfc_keys.py"), *argv],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"child {argv} failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ci",
        action="store_true",
        help="small-Ne profile: skip the multi-GB materialized runs",
    )
    parser.add_argument(
        "--child",
        nargs="+",
        metavar="ARG",
        help="internal: run one measurement and print JSON",
    )
    args = parser.parse_args(argv)

    if args.child:
        kind = args.child[0]
        if kind in ("keyed", "materialized"):
            out = child_partition(
                kind, int(args.child[1]), int(args.child[2])
            )
        else:
            sched = args.child[3] if len(args.child) > 3 else None
            out = child_throughput(args.child[1], int(args.child[2]), sched)
        print(json.dumps(out))
        return 0

    nes = CI_NES if args.ci else FULL_NES
    cases = CI_THROUGHPUT if args.ci else FULL_THROUGHPUT
    partitions: list[dict] = []
    for ne in nes:
        nparts = min(NPARTS, 6 * ne * ne)
        for path in ("keyed", "materialized"):
            rec = _spawn(["--child", path, str(ne), str(nparts)])
            partitions.append(rec)
            print(
                f"{path:12s} ne={ne:5d} K={rec['k']:9,d}  "
                f"{rec['seconds']:8.2f} s  "
                f"{rec['cells_per_s'] / 1e6:7.2f} Mcells/s  "
                f"peak RSS {rec['peak_rss_bytes'] / 2**20:9.1f} MiB"
            )

    throughput: list[dict] = []
    for label, ne, schedule in cases:
        child = ["--child", "throughput", label, str(ne)]
        if label == "morton":
            rec = _spawn(["--child", "throughput", "morton", str(ne)])
        else:
            rec = _spawn(child + ([schedule] if schedule else []))
        throughput.append(rec)
        print(
            f"key {label:14s} ne={ne:5d} K={rec['k']:9,d}  "
            f"{rec['cells_per_s'] / 1e6:7.2f} Mcells/s"
        )

    failures: list[str] = []

    # Bit-identity of the two paths at the smallest Ne of the sweep
    # (full equality is golden-tested; the checksum guards the bench
    # wiring itself).
    by = {(r["path"], r["ne"]): r for r in partitions}
    ne0 = nes[0]
    if by[("keyed", ne0)]["checksum"] != by[("materialized", ne0)]["checksum"]:
        failures.append(f"keyed != materialized assignment at ne={ne0}")

    # Memory: only meaningful at scale, where O(K) dwarfs interpreter
    # baseline RSS.
    ratio = None
    big = max(ne for ne in nes if ("materialized", ne) in by)
    if big >= 1024:
        ratio = (
            by[("materialized", big)]["peak_rss_bytes"]
            / by[("keyed", big)]["peak_rss_bytes"]
        )
        print(f"peak-RSS ratio (materialized / keyed) at ne={big}: {ratio:.1f}x")
        if ratio < MIN_RSS_RATIO:
            failures.append(
                f"RSS ratio {ratio:.1f}x < {MIN_RSS_RATIO}x at ne={big}"
            )

    from repro._native import LIB

    kernels = LIB is not None
    hilbert = next(r for r in throughput if r["curve"] == "hilbert")
    if kernels and not args.ci and hilbert["cells_per_s"] < MIN_CELLS_PER_S:
        failures.append(
            f"hilbert keying {hilbert['cells_per_s']:.2e} cells/s "
            f"< {MIN_CELLS_PER_S:.0e}"
        )

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "schema": 1,
                "profile": "ci" if args.ci else "full",
                "ckernels": kernels,
                "partitions": partitions,
                "throughput": throughput,
                "rss_ratio_at_largest_ne": ratio,
                "failures": failures,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {RESULTS_PATH}")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("sfc-keys bench ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
