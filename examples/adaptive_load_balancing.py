#!/usr/bin/env python3
"""Dynamic load balancing with SFC re-cuts: a moving storm.

The paper's introduction credits space-filling curves' success in
adaptive mesh refinement; this example shows why on the cubed-sphere.
A "storm" (a patch of elements with 4x computational cost, e.g. active
convection physics) circles the equator.  At every step the load is
rebalanced two ways:

* re-cutting the fixed global SFC under the new weights
  (``repro.partition.repartition``), and
* running a fresh METIS-style K-way partition of the weighted graph.

Both achieve similar load balance — but the SFC re-cut migrates a
small fraction of the elements, while the fresh graph partition
reshuffles most of the sphere every time.

Run:  python examples/adaptive_load_balancing.py [Ne] [Nproc]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import cubed_sphere_curve, mesh_graph, part_graph
from repro.experiments import format_table
from repro.partition import (
    LoadTracker,
    load_balance,
    migration_cost,
)


def storm_weights(mesh, lon_center: float, boost: float = 4.0) -> np.ndarray:
    """Element weights with a storm patch centered at a longitude."""
    lon, lat = mesh.centers_lonlat
    dlon = np.angle(np.exp(1j * (lon - lon_center)))
    in_storm = (np.abs(dlon) < 0.5) & (np.abs(lat) < 0.5)
    return np.where(in_storm, boost, 1.0)


def main() -> None:
    ne = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    nproc = int(sys.argv[2]) if len(sys.argv) > 2 else 48
    curve = cubed_sphere_curve(ne)
    mesh = curve.mesh
    graph_template = mesh_graph(mesh)
    print(f"K={mesh.nelem}, Nproc={nproc}, storm circling the equator\n")

    tracker = LoadTracker(curve, nparts=nproc)
    metis_prev = None
    rows = []
    for step, lon_center in enumerate(np.linspace(0, 2 * np.pi, 9)[:-1]):
        w = storm_weights(mesh, lon_center)
        sfc_part = tracker.update(w)
        # Fresh METIS partition of the weighted graph.
        g = mesh_graph(mesh, vweights=np.round(w).astype(np.int64))
        metis_part = part_graph(g, nproc, "kway", seed=step)
        metis_loads = np.bincount(
            metis_part.assignment, weights=w, minlength=nproc
        )
        sfc_entry = tracker.history[-1]
        if metis_prev is not None:
            metis_moved = migration_cost(metis_prev, metis_part).fraction_moved
        else:
            metis_moved = 0.0
        metis_prev = metis_part
        rows.append(
            [
                step,
                f"{np.degrees(lon_center):.0f}",
                f"{sfc_entry['lb']:.3f}",
                f"{100 * sfc_entry['fraction_moved']:.1f}%",
                f"{load_balance(metis_loads):.3f}",
                f"{100 * metis_moved:.1f}%",
            ]
        )
    print(
        format_table(
            [
                "step",
                "storm lon",
                "SFC LB",
                "SFC moved",
                "METIS LB",
                "METIS moved",
            ],
            rows,
            title="Rebalancing a moving hotspot: SFC re-cut vs fresh K-way",
        )
    )
    sfc_avg = np.mean([h["fraction_moved"] for h in tracker.history[1:]])
    print(
        f"\nAverage migration per rebalance: SFC {100 * sfc_avg:.1f}% of elements; "
        "fresh graph partitioning reshuffles most of the mesh."
    )
    del graph_template


if __name__ == "__main__":
    main()
