#!/usr/bin/env python3
"""Partition a full climate-resolution cubed-sphere, the paper's use case.

Reproduces the operational decision the paper supports: given a SEAM
climate run at K=1536 elements (Ne=16) on the 768-processor IBM P690,
which partitioner should drive the decomposition?  Prints the Table-2
statistics, the rank->node communication locality, and a weighted-
element variant (land/sea cost asymmetry) exercising the weighted SFC
cuts.

Run:  python examples/climate_partitioning.py [Ne] [Nproc]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    PerformanceModel,
    evaluate_partition,
    mesh_graph,
    part_graph,
    sfc_partition,
)
from repro.cubesphere import cubed_sphere_mesh
from repro.experiments import format_table
from repro.machine import P690_CLUSTER
from repro.partition import communication_pattern


def node_locality(partition, graph) -> float:
    """Fraction of communicated bytes that stay inside an SMP node."""
    comm = communication_pattern(graph, partition)
    intra = total = 0
    for (src, dst), pts in comm.pair_points.items():
        total += pts
        if P690_CLUSTER.node_of(src) == P690_CLUSTER.node_of(dst):
            intra += pts
    return intra / total if total else 1.0


def main() -> None:
    ne = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    nproc = int(sys.argv[2]) if len(sys.argv) > 2 else 768
    mesh = cubed_sphere_mesh(ne)
    graph = mesh_graph(mesh)
    model = PerformanceModel()
    print(f"Climate configuration: Ne={ne}, K={mesh.nelem}, Nproc={nproc}\n")

    rows = []
    for method in ("sfc", "kway", "tv", "rb"):
        part = (
            sfc_partition(ne, nproc)
            if method == "sfc"
            else part_graph(graph, nproc, method)
        )
        q = evaluate_partition(graph, part)
        t = model.step_timing(graph, part)
        rows.append(
            [
                method,
                f"{q.lb_nelemd:.3f}",
                f"{q.lb_spcv:.3f}",
                q.edgecut,
                f"{100 * node_locality(part, graph):.0f}%",
                f"{t.step_s * 1e6:.0f}",
                f"{t.sustained_flops / 1e9:.0f}",
            ]
        )
    print(
        format_table(
            [
                "method",
                "LB(nelemd)",
                "LB(spcv)",
                "edgecut",
                "intra-node comm",
                "time/step (us)",
                "Gflop/s",
            ],
            rows,
            title="Partitioner comparison (paper Table 2 + node locality)",
        )
    )

    # Weighted variant: elements over "land" (one hemisphere) cost 1.5x
    # (e.g. extra physics), exercising the weighted SFC cutter.
    print("\nWeighted elements (land columns cost 1.5x):")
    land = mesh.centers_xyz[:, 0] > 0
    weights = np.where(land, 1.5, 1.0)
    part_w = sfc_partition(ne, nproc, weights=weights)
    part_u = sfc_partition(ne, nproc)
    loads_w = np.array(
        [weights[part_w.members(p)].sum() for p in range(nproc)]
    )
    loads_u = np.array(
        [weights[part_u.members(p)].sum() for p in range(nproc)]
    )
    print(
        format_table(
            ["cutter", "max load", "mean load", "LB(load)"],
            [
                [
                    "uniform cuts",
                    f"{loads_u.max():.1f}",
                    f"{loads_u.mean():.2f}",
                    f"{(loads_u.max() - loads_u.mean()) / loads_u.max():.3f}",
                ],
                [
                    "weighted cuts",
                    f"{loads_w.max():.1f}",
                    f"{loads_w.mean():.2f}",
                    f"{(loads_w.max() - loads_w.mean()) / loads_w.max():.3f}",
                ],
            ],
        )
    )


if __name__ == "__main__":
    main()
