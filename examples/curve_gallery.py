#!/usr/bin/env python3
"""Gallery of the paper's space-filling curves (Figures 2-6), in ASCII.

Renders the visit order of the Hilbert curve (levels 1-2, Fig. 2), the
level-1 meandering Peano curve (Fig. 4), the level-1 Hilbert-Peano
curve connecting 36 sub-domains (Fig. 5), and the single continuous
curve over the flattened cube (Fig. 6), plus locality statistics for
every nesting order of a 12x12 Hilbert-Peano domain.

Run:  python examples/curve_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro import cubed_sphere_curve, generate_curve, hilbert_curve, peano_curve
from repro.experiments import format_table
from repro.sfc import all_schedules, analyze_curve


def render_flattened_cube(ne: int) -> str:
    """ASCII flattened-cube rendering of the global curve (Fig. 6).

    Layout (face ids)::

                +---+
                | 4 |
        +---+---+---+---+
        | 0 | 1 | 2 | 3 |
        +---+---+---+---+
                | 5 |
    """
    curve = cubed_sphere_curve(ne)
    mesh = curve.mesh
    width = len(str(mesh.nelem - 1))
    blank = " " * width
    # Face panel origins in a (4*ne x 3*ne) character grid of cells.
    origin = {0: (0, ne), 1: (ne, ne), 2: (2 * ne, ne), 3: (3 * ne, ne),
              4: (ne, 2 * ne), 5: (ne, 0)}
    cols, rows_n = 4 * ne, 3 * ne
    grid = [[blank for _ in range(cols)] for _ in range(rows_n)]
    for gid in range(mesh.nelem):
        face, ix, iy = mesh.locate(gid)
        ox, oy = origin[face]
        grid[oy + iy][ox + ix] = f"{int(curve.position[gid]):>{width}d}"
    lines = [" ".join(row) for row in reversed(grid)]
    return "\n".join(lines)


def main() -> None:
    print("=== Level-1 Hilbert curve (paper Fig. 2a) ===")
    print(hilbert_curve(1).render(), "\n")
    print("=== Level-2 Hilbert curve (paper Fig. 2c) ===")
    print(hilbert_curve(2).render(), "\n")
    print("=== Level-1 meandering Peano curve (paper Fig. 4a) ===")
    print(peano_curve(1).render(), "\n")
    print("=== Level-1 Hilbert-Peano curve, 36 sub-domains (paper Fig. 5) ===")
    print(generate_curve(size=6).render(), "\n")
    print("=== Continuous curve over the flattened cube, Ne=2 (paper Fig. 6) ===")
    print(render_flattened_cube(2), "\n")

    print("=== Locality of every 12x12 Hilbert-Peano nesting order ===")
    rows = []
    for sched in all_schedules(12):
        loc = analyze_curve(generate_curve(schedule=sched), nsegments=12)
        rows.append(
            [
                sched,
                f"{loc.mean_bbox_aspect:.3f}",
                f"{loc.mean_surface_to_volume:.3f}",
                f"{loc.mean_neighbor_stretch:.1f}",
                loc.max_neighbor_stretch,
            ]
        )
    print(
        format_table(
            ["schedule", "bbox aspect", "surface/volume", "mean stretch", "max stretch"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
