#!/usr/bin/env python3
"""The SEAM ancestor problem: shallow-water equations on the sphere.

Integrates Williamson test case 2 (steady geostrophic flow) with the
spectral-element shallow-water core — the equation set of Taylor,
Tribbia & Iskandarani (1997), the paper's reference [9] — and reports
steadiness error, conservation, and the runtime cost per step, then
repeats the run under a Hilbert-curve domain decomposition to show the
exchange volumes the partitioners manage.

Run:  python examples/shallow_water_tc2.py [Ne] [t_end]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.experiments import format_table
from repro.seam import ShallowWaterSolver, build_geometry, williamson_tc2


def main() -> None:
    ne = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    t_end = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    npts = 8
    geom = build_geometry(ne, npts)
    solver = ShallowWaterSolver(geom, gravity=1.0, omega=1.0)
    state0 = williamson_tc2(geom, u0=0.2, h0=1.0)

    print(
        f"Grid: Ne={ne}, np={npts}, K={geom.mesh.nelem} elements; "
        f"Williamson TC2, t_end={t_end}"
    )
    m0 = solver.total_mass(state0)
    e0 = solver.total_energy(state0)
    t0 = time.perf_counter()
    state = solver.run(state0, t_end=t_end, cfl=0.4)
    wall = time.perf_counter() - t0

    rows = [
        ["max |h - h0|", f"{np.abs(state.h - state0.h).max():.2e}"],
        ["max |v - v0|", f"{np.abs(state.v - state0.v).max():.2e}"],
        ["mass drift (rel)", f"{abs(solver.total_mass(state) - m0) / m0:.2e}"],
        ["energy drift (rel)", f"{abs(solver.total_energy(state) - e0) / e0:.2e}"],
        ["RHS evaluations", solver.rhs_evals],
        ["wall time (s)", f"{wall:.2f}"],
        [
            "time per RHS per element (us)",
            f"{1e6 * wall / (solver.rhs_evals * geom.mesh.nelem):.1f}",
        ],
    ]
    print(format_table(["quantity", "value"], rows, title="Steady-state hold"))

    print(
        "\nThe steady solution is held to discretization accuracy: the "
        "geostrophic balance between the Coriolis term and the pressure "
        "gradient is exactly what SEAM's dynamical core must maintain, "
        "per element, between every DSS boundary exchange."
    )


if __name__ == "__main__":
    main()
