#!/usr/bin/env python3
"""Strong-scaling study: the paper's Figures 7-10 as text plots.

Sweeps every admissible processor count for a chosen resolution,
simulates SEAM on the P690 machine model under SFC and METIS-style
partitions, and renders speedup and sustained-Gflops curves as ASCII
plots plus the underlying series table.

Run:  python examples/scaling_study.py [Ne]
"""

from __future__ import annotations

import sys

from repro.experiments import (
    best_metis,
    format_series,
    speedup_sweep,
)


def ascii_plot(xs, series: dict[str, list[float]], width=64, height=18, title=""):
    """Minimal log-x scatter plot with one marker per series."""
    import math

    markers = "ox+*#"
    all_vals = [v for vals in series.values() for v in vals]
    ymax = max(all_vals) * 1.05
    xmin, xmax = math.log(max(min(xs), 1)), math.log(max(xs))
    grid = [[" "] * width for _ in range(height)]
    for (name, vals), mark in zip(series.items(), markers):
        for x, y in zip(xs, vals):
            cx = (
                int((math.log(x) - xmin) / (xmax - xmin) * (width - 1))
                if xmax > xmin
                else 0
            )
            cy = int(y / ymax * (height - 1))
            grid[height - 1 - cy][cx] = mark
    lines = [title] if title else []
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" Nproc (log scale): {min(xs)} .. {max(xs)};  ymax = {ymax:.1f}")
    legend = "  ".join(f"{m}={n}" for (n, _), m in zip(series.items(), markers))
    lines.append(" " + legend)
    return "\n".join(lines)


def main() -> None:
    ne = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    k = 6 * ne * ne
    print(f"Strong scaling, K={k} (Ne={ne}) on the simulated IBM P690\n")
    results = speedup_sweep(ne)
    nprocs = [r.nproc for r in results["sfc"]]

    speedups = {
        "sfc": [r.speedup for r in results["sfc"]],
        "best metis": [best_metis(results, i).speedup for i in range(len(nprocs))],
    }
    gflops = {
        "sfc": [r.gflops for r in results["sfc"]],
        "best metis": [best_metis(results, i).gflops for i in range(len(nprocs))],
    }
    print(ascii_plot(nprocs, speedups, title=f"Speedup vs 1 processor (paper Fig. {7 if ne == 8 else 8})"))
    print()
    print(ascii_plot(nprocs, gflops, title="Sustained Gflop/s (paper Figs. 9-10)"))
    print()
    print(
        format_series(
            "Nproc",
            nprocs,
            {
                "S(sfc)": [f"{v:.1f}" for v in speedups["sfc"]],
                "S(metis)": [f"{v:.1f}" for v in speedups["best metis"]],
                "GF(sfc)": [f"{v:.1f}" for v in gflops["sfc"]],
                "GF(metis)": [f"{v:.1f}" for v in gflops["best metis"]],
                "sfc advantage": [
                    f"{(a / b - 1) * 100:+.0f}%"
                    for a, b in zip(speedups["sfc"], speedups["best metis"])
                ],
            },
        )
    )


if __name__ == "__main__":
    main()
