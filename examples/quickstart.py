#!/usr/bin/env python3
"""Quickstart: partition the cubed-sphere with a space-filling curve.

Builds the K=384 cubed-sphere of Dennis (2003), partitions it for 96
processors with the Hilbert-curve partitioner and with METIS-style
K-way, and compares the Table-2 quality metrics and simulated SEAM
performance on the NCAR IBM P690 machine model.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    P690_CLUSTER,
    PerformanceModel,
    evaluate_partition,
    mesh_graph,
    part_graph,
    sfc_partition,
)
from repro.cubesphere import cubed_sphere_mesh
from repro.experiments import format_table


def main() -> None:
    ne, nprocs = 8, 96
    mesh = cubed_sphere_mesh(ne)
    graph = mesh_graph(mesh)
    print(f"Cubed-sphere: Ne={ne}, K={mesh.nelem} spectral elements")
    print(f"Machine: {P690_CLUSTER.name}\n")

    model = PerformanceModel()
    rows = []
    for name, part in [
        ("sfc (Hilbert)", sfc_partition(ne, nprocs)),
        ("metis kway", part_graph(graph, nprocs, "kway")),
        ("metis rb", part_graph(graph, nprocs, "rb")),
    ]:
        q = evaluate_partition(graph, part)
        t = model.step_timing(graph, part)
        rows.append(
            [
                name,
                f"{q.lb_nelemd:.3f}",
                f"{q.lb_spcv:.3f}",
                q.edgecut,
                f"{t.step_s * 1e6:.0f}",
                f"{t.sustained_flops / 1e9:.1f}",
            ]
        )
    print(
        format_table(
            ["method", "LB(nelemd)", "LB(spcv)", "edgecut", "time/step (us)", "Gflop/s"],
            rows,
            title=f"Partition quality and simulated SEAM performance, {nprocs} processors",
        )
    )
    print(
        "\nThe SFC partition is perfectly load balanced (LB = 0) because "
        f"{nprocs} divides K={mesh.nelem}; METIS trades balance for edgecut."
    )


if __name__ == "__main__":
    main()
