#!/usr/bin/env python3
"""Run the SEAM-analog spectral-element solver on a standard test case.

Advects a cosine bell once around the sphere by solid-body rotation
(Williamson et al. test case 1) on an SFC-partitioned cubed-sphere,
reporting error norms, mass conservation, and the communication volume
each processor's DSS exchange would incur per step — connecting the
numerical substrate to the partitioning study.

Run:  python examples/cosine_bell_advection.py [Ne] [revolutions]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import sfc_partition
from repro.experiments import format_table
from repro.seam import (
    TransportSolver,
    build_geometry,
    build_point_map,
    cosine_bell,
    exchange_schedule,
    rotate_about_axis,
    solid_body_wind,
)


def main() -> None:
    ne = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    rev = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    npts = 8  # SEAM's polynomial order
    geom = build_geometry(ne, npts)
    xyz = geom.xyz
    axis = np.array([0.0, 2.0**-0.5, 2.0**-0.5])  # oblique: crosses faces
    center = np.array([1.0, 0.0, 0.0])

    print(f"Grid: Ne={ne}, np={npts}, K={geom.mesh.nelem} elements, "
          f"{geom.mesh.nelem * npts * npts} GLL points")
    wind = solid_body_wind(xyz, axis, omega=1.0)
    solver = TransportSolver(geom, wind)
    q0 = cosine_bell(xyz, center)
    angle = 2 * np.pi * rev
    mass0 = solver.dss.integrate(q0)

    t0 = time.perf_counter()
    q = solver.run(q0, t_end=angle, cfl=0.4)
    elapsed = time.perf_counter() - t0

    departed = rotate_about_axis(xyz, axis, -angle)
    ref = cosine_bell(departed, center)
    err = q - ref
    l2 = float(np.sqrt((err**2).mean() / (ref**2).mean()))
    linf = float(np.abs(err).max())
    mass = solver.dss.integrate(q)

    print(
        format_table(
            ["quantity", "value"],
            [
                ["revolutions", rev],
                ["RHS evaluations", solver.rhs_evals],
                ["relative L2 error", f"{l2:.2e}"],
                ["Linf error", f"{linf:.2e}"],
                ["mass drift", f"{abs(mass - mass0) / mass0:.2e}"],
                ["wall time (s)", f"{elapsed:.2f}"],
            ],
            title="Solid-body advection of a cosine bell",
        )
    )

    # Per-processor DSS exchange volume under an SFC partition.
    nproc = min(24, geom.mesh.nelem)
    while geom.mesh.nelem % nproc:
        nproc -= 1
    part = sfc_partition(ne, nproc)
    sched = exchange_schedule(build_point_map(geom), part)
    send = np.zeros(nproc)
    for (src, _dst), pts in sched.items():
        send[src] += pts
    print(
        f"\nSFC partition on {nproc} ranks: "
        f"{sum(sched.values())} point values exchanged per DSS, "
        f"per-rank max/mean = {send.max():.0f}/{send.mean():.1f} "
        f"(LB(spcv) = {(send.max() - send.mean()) / send.max():.3f})"
    )


if __name__ == "__main__":
    main()
